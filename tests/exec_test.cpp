// Tests for src/exec: the batch case executor and the content-addressed
// result cache, plus the cross-layer guarantees that justify them —
//   * results in submission order, bit-identical for every thread budget;
//   * host-thread budgeting (sum of declared case costs never exceeds the
//     pool; since the fiber rearchitecture an engine case costs its resolved
//     scheduler worker count, not nranks);
//   * a TSan-targeted stress run: oversubscribed pool, mixed-nranks engine
//     cases, and an injected mid-case throw that must not deadlock (the
//     engine poisons mailboxes so abandoned peers unwind);
//   * warm-cache runs execute zero simulations and reproduce results
//     bit for bit (EnergyStudy calibration + validation);
//   * parallel check::run_sweep is byte-identical to serial, and a shrunk
//     repro does not depend on where in the sweep the failure was found.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/study.hpp"
#include "analysis/surface.hpp"
#include "check/check.hpp"
#include "check/generators.hpp"
#include "check/oracle.hpp"
#include "check/shrink.hpp"
#include "exec/cache.hpp"
#include "exec/codec.hpp"
#include "exec/executor.hpp"
#include "model/workloads.hpp"
#include "sim/engine.hpp"
#include "sim/machine.hpp"

namespace {

namespace fs = std::filesystem;
using namespace isoee;

/// Fresh per-test scratch directory (removed up front so reruns start cold).
std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("isoee_exec_test_" + name);
  fs::remove_all(dir);
  return dir.string();
}

sim::MachineSpec tiny_machine() {
  sim::MachineSpec m;
  m.name = "tiny";
  m.nodes = 16;
  m.sockets_per_node = 2;
  m.cores_per_socket = 4;
  m.cpu.cpi = 1.0;
  m.cpu.base_ghz = 2.0;
  m.cpu.gears_ghz = {2.0, 1.5, 1.0};
  m.mem.caches = {sim::CacheLevel{32 * 1024, 1e-9}, sim::CacheLevel{1 << 20, 5e-9}};
  m.mem.dram_latency_s = 100e-9;
  m.net.t_s = 1e-6;
  m.net.bandwidth_Bps = 1e9;
  m.power.cpu_idle_w = 10;
  m.power.cpu_delta_w = 8;
  return m;
}

// ---------------------------------------------------------------------------
// Codec: cached payloads must round-trip doubles bit for bit.
// ---------------------------------------------------------------------------

TEST(Codec, U64HexRoundTrip) {
  for (std::uint64_t v : {0ULL, 1ULL, 0xdeadbeefULL, ~0ULL, 0x8000000000000000ULL}) {
    const std::string hex = exec::encode_u64(v);
    EXPECT_EQ(hex.size(), 16u);
    ASSERT_TRUE(exec::decode_u64(hex).has_value()) << hex;
    EXPECT_EQ(*exec::decode_u64(hex), v);
  }
  EXPECT_FALSE(exec::decode_u64("123").has_value());
  EXPECT_FALSE(exec::decode_u64("00000000000000zz").has_value());
}

TEST(Codec, DoublesRoundTripExactlyIncludingNanAndSignedZero) {
  const std::vector<double> values = {0.0,
                                      -0.0,
                                      1.0 / 3.0,
                                      -2.718281828459045,
                                      1e-308,
                                      std::nan("0x7ff"),
                                      std::numeric_limits<double>::infinity()};
  const std::vector<double> back = exec::decode_doubles(exec::encode_doubles(values));
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Bit equality, not value equality: NaN != NaN and -0.0 == +0.0 would
    // both hide codec bugs.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back[i]), std::bit_cast<std::uint64_t>(values[i]))
        << i;
  }
  EXPECT_TRUE(exec::decode_doubles("").empty());
  EXPECT_THROW(exec::decode_doubles("nothex"), std::invalid_argument);
}

TEST(Codec, CaseSeedsAreDecorrelated) {
  // Neighbouring indices and neighbouring root seeds must give distinct
  // streams (the pre-executor bug class: every case sharing one generator).
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 64; ++i) seeds.push_back(exec::case_seed(42, i));
  for (std::uint64_t i = 0; i < 64; ++i) seeds.push_back(exec::case_seed(43, i));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

// ---------------------------------------------------------------------------
// run_batch: ordering, budgeting, failure semantics.
// ---------------------------------------------------------------------------

TEST(RunBatch, ResultsArriveInSubmissionOrderRegardlessOfCompletionOrder) {
  std::vector<exec::Case> cases;
  for (int i = 0; i < 8; ++i) {
    exec::Case c;
    c.run = [i]() -> std::string {
      // Early cases finish last.
      std::this_thread::sleep_for(std::chrono::milliseconds(8 - i));
      return "case-" + std::to_string(i);
    };
    cases.push_back(std::move(c));
  }
  exec::BatchOptions opts;
  opts.thread_budget = 8;
  const auto results = exec::run_batch(cases, opts);
  ASSERT_EQ(results.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(results[static_cast<std::size_t>(i)].ok());
    EXPECT_EQ(results[static_cast<std::size_t>(i)].payload, "case-" + std::to_string(i));
  }
}

TEST(RunBatch, HostThreadBudgetIsNeverExceeded) {
  constexpr int kBudget = 4;
  std::atomic<int> in_use{0};
  std::atomic<int> peak{0};
  std::vector<exec::Case> cases;
  for (int i = 0; i < 24; ++i) {
    exec::Case c;
    c.threads = 1 + i % 3;  // mixed widths 1..3, all admittable
    const int cost = c.threads;
    c.run = [&, cost]() -> std::string {
      const int now = in_use.fetch_add(cost) + cost;
      int seen = peak.load();
      while (now > seen && !peak.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      in_use.fetch_sub(cost);
      return std::string();
    };
    cases.push_back(std::move(c));
  }
  exec::BatchStats stats;
  exec::BatchOptions opts;
  opts.thread_budget = kBudget;
  opts.stats = &stats;
  const auto results = exec::run_batch(cases, opts);
  for (const auto& r : results) EXPECT_TRUE(r.ok());
  EXPECT_LE(peak.load(), kBudget);
  EXPECT_LE(stats.max_threads_in_use, kBudget);
  EXPECT_GT(stats.max_threads_in_use, 1);  // the pool genuinely overlapped work
  EXPECT_EQ(stats.started, 24u);
}

TEST(RunBatch, CaseWiderThanTheBudgetRunsAloneInsteadOfDeadlocking) {
  std::vector<exec::Case> cases(3);
  cases[0].threads = 100;  // wider than any sane budget
  cases[0].run = [] { return std::string("wide"); };
  cases[1].threads = 2;
  cases[1].run = [] { return std::string("a"); };
  cases[2].threads = 2;
  cases[2].run = [] { return std::string("b"); };
  exec::BatchStats stats;
  exec::BatchOptions opts;
  opts.thread_budget = 4;
  opts.stats = &stats;
  const auto results = exec::run_batch(cases, opts);
  EXPECT_EQ(results[0].payload, "wide");
  EXPECT_EQ(results[1].payload, "a");
  EXPECT_EQ(results[2].payload, "b");
  EXPECT_LE(stats.max_threads_in_use, 4);  // the wide case's cost clamps
}

TEST(RunBatch, EngineCaseCostIsResolvedWorkersNotRanks) {
  // Budget doctrine since the fiber rearchitecture: a simulation case
  // declares the scheduler worker count the engine will actually use — a
  // handful of host threads — not nranks. Explicit requests clamp to
  // [1, nranks]; the automatic policy stays far below wide rank counts.
  EXPECT_EQ(sim::resolve_engine_workers(6, 4), 4);
  EXPECT_EQ(sim::resolve_engine_workers(3, 1024), 3);
  EXPECT_EQ(sim::resolve_engine_workers(-2, 1024), 1);
  const int w = sim::resolve_engine_workers(0, 1024);
  EXPECT_GE(w, 1);
  EXPECT_LE(w, 8);  // auto policy: min(hardware, 8), never anywhere near p

  // Under the old nranks-cost doctrine a p=1024 case clamped to the whole
  // budget and ran alone; with worker-count costs a default budget admits
  // several wide cases at once (checked when the resolved cost allows it).
  constexpr int kBudget = 4;
  if (2 * w <= kBudget) {
    std::atomic<int> running{0};
    std::atomic<int> peak_cases{0};
    std::vector<exec::Case> cases;
    for (int i = 0; i < 6; ++i) {
      exec::Case c;
      c.threads = w;  // what study/service/check declare for a p=1024 case
      c.run = [&]() -> std::string {
        const int now = running.fetch_add(1) + 1;
        int seen = peak_cases.load();
        while (now > seen && !peak_cases.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        running.fetch_sub(1);
        return std::string();
      };
      cases.push_back(std::move(c));
    }
    exec::BatchStats stats;
    exec::BatchOptions opts;
    opts.thread_budget = kBudget;
    opts.stats = &stats;
    const auto results = exec::run_batch(cases, opts);
    for (const auto& r : results) EXPECT_TRUE(r.ok());
    EXPECT_GE(peak_cases.load(), 2);  // wide cases genuinely overlapped
    EXPECT_LE(stats.max_threads_in_use, kBudget);
  }
}

TEST(RunBatch, ThrowingCaseIsRecordedAndOthersComplete) {
  std::vector<exec::Case> cases(3);
  cases[0].run = [] { return std::string("ok0"); };
  cases[1].run = []() -> std::string { throw std::runtime_error("boom"); };
  cases[2].run = [] { return std::string("ok2"); };
  exec::BatchOptions opts;
  opts.thread_budget = 3;
  const auto results = exec::run_batch(cases, opts);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].error, "boom");
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
}

TEST(RunBatch, FailFastSkipsEverythingAfterTheFailureInSerialMode) {
  std::vector<exec::Case> cases(6);
  for (int i = 0; i < 6; ++i) {
    cases[static_cast<std::size_t>(i)].run = [i]() -> std::string {
      if (i == 2) throw std::runtime_error("fail at 2");
      return std::to_string(i);
    };
  }
  exec::BatchStats stats;
  exec::BatchOptions opts;
  opts.thread_budget = 1;  // serial: skip set is exactly the suffix
  opts.fail_fast = true;
  opts.stats = &stats;
  const auto results = exec::run_batch(cases, opts);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_EQ(results[2].error, "fail at 2");
  for (int i = 3; i < 6; ++i) EXPECT_TRUE(results[static_cast<std::size_t>(i)].skipped);
  EXPECT_EQ(stats.skipped, 3u);
  EXPECT_EQ(stats.started, 3u);
}

TEST(RunBatch, FailFastCancelsNotYetAdmittedCasesInParallelMode) {
  std::vector<exec::Case> cases(64);
  for (int i = 0; i < 64; ++i) {
    cases[static_cast<std::size_t>(i)].run = [i]() -> std::string {
      if (i == 0) throw std::runtime_error("first case fails");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return std::to_string(i);
    };
  }
  exec::BatchStats stats;
  exec::BatchOptions opts;
  opts.thread_budget = 2;
  opts.fail_fast = true;
  opts.stats = &stats;
  const auto results = exec::run_batch(cases, opts);
  EXPECT_EQ(results[0].error, "first case fails");
  EXPECT_GT(stats.skipped, 0u);  // the long tail never ran
  std::uint64_t skipped = 0;
  for (const auto& r : results) skipped += r.skipped ? 1 : 0;
  EXPECT_EQ(skipped, stats.skipped);
}

TEST(RunBatch, IsFailurePredicateTriggersFailFast) {
  std::vector<exec::Case> cases(4);
  for (int i = 0; i < 4; ++i) {
    cases[static_cast<std::size_t>(i)].run = [i] {
      return std::string(i == 1 ? "bad" : "good");
    };
  }
  exec::BatchOptions opts;
  opts.thread_budget = 1;
  opts.fail_fast = true;
  opts.is_failure = [](const exec::CaseResult& r) { return r.payload == "bad"; };
  const auto results = exec::run_batch(cases, opts);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].payload, "bad");
  EXPECT_TRUE(results[2].skipped);
  EXPECT_TRUE(results[3].skipped);
}

TEST(RunBatch, ParallelPayloadsAreBitIdenticalToSerial) {
  const auto build = [] {
    std::vector<exec::Case> cases;
    for (int i = 0; i < 12; ++i) {
      exec::Case c;
      c.run = [i]() -> std::string {
        // Deterministic per-case stream derived via case_seed.
        std::uint64_t s = exec::case_seed(7, static_cast<std::uint64_t>(i));
        double acc = 0.0;
        for (int k = 0; k < 64; ++k) {
          s = s * 6364136223846793005ULL + 1442695040888963407ULL;
          acc += static_cast<double>(s >> 11) * 0x1.0p-53;
        }
        return exec::encode_f64(acc);
      };
      cases.push_back(std::move(c));
    }
    return cases;
  };
  exec::BatchOptions serial;
  serial.thread_budget = 1;
  exec::BatchOptions parallel;
  parallel.thread_budget = 8;
  const auto a = exec::run_batch(build(), serial);
  const auto b = exec::run_batch(build(), parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].payload, b[i].payload);
}

// ---------------------------------------------------------------------------
// Stress: oversubscribed pool, mixed-nranks engine cases, injected throw.
// Run under TSan in CI; locally it still exercises the poisoning path —
// before the mailbox fix this test deadlocked on the throwing case.
// ---------------------------------------------------------------------------

TEST(ExecutorStress, OversubscribedEngineCasesWithInjectedThrowDoNotDeadlock) {
  const sim::MachineSpec spec = tiny_machine();
  constexpr int kCases = 24;
  constexpr int kThrowingCase = 13;

  const auto build = [&spec] {
    std::vector<exec::Case> cases;
    for (int i = 0; i < kCases; ++i) {
      const int nranks = 1 << (i % 3);  // 1, 2, 4 engine threads per case
      exec::Case c;
      c.threads = nranks;
      c.run = [&spec, nranks, i]() -> std::string {
        sim::Engine eng(spec);
        if (i == kThrowingCase) {
          // Rank 1 dies while every peer blocks on a message it will never
          // send; the engine must unwind them all (RankAbandoned) and
          // rethrow the root cause into this case slot.
          eng.run(4, [](sim::RankCtx& ctx) {
            if (ctx.rank() == 1) throw std::runtime_error("injected failure");
            std::vector<double> buf(4);
            ctx.recv(1, 9, std::span<double>(buf));
          });
        }
        // A ring of sends so the mixed-width cases genuinely interleave.
        const auto res = eng.run(nranks, [&](sim::RankCtx& ctx) {
          ctx.compute(2000 + 100 * i);
          if (nranks > 1) {
            std::vector<double> out(8, static_cast<double>(ctx.rank()));
            std::vector<double> in(8);
            const int next = (ctx.rank() + 1) % nranks;
            const int prev = (ctx.rank() + nranks - 1) % nranks;
            ctx.send(next, 3, std::span<const double>(out));
            ctx.recv(prev, 3, std::span<double>(in));
          }
        });
        return exec::encode_f64(res.makespan) + ":" + exec::encode_f64(res.total_energy_j());
      };
      cases.push_back(std::move(c));
    }
    return cases;
  };

  exec::BatchStats stats;
  exec::BatchOptions opts;
  opts.thread_budget = 4;  // far fewer host threads than sum(nranks) = 56
  opts.stats = &stats;
  const auto results = exec::run_batch(build(), opts);

  ASSERT_EQ(results.size(), static_cast<std::size_t>(kCases));
  for (int i = 0; i < kCases; ++i) {
    const auto& r = results[static_cast<std::size_t>(i)];
    if (i == kThrowingCase) {
      EXPECT_EQ(r.error, "injected failure");
    } else {
      EXPECT_TRUE(r.ok()) << i << ": " << r.error;
      EXPECT_FALSE(r.payload.empty());
    }
  }
  EXPECT_LE(stats.max_threads_in_use, 4);

  // And the whole batch is bit-identical serial vs oversubscribed-parallel.
  exec::BatchOptions serial;
  serial.thread_budget = 1;
  const auto reference = exec::run_batch(build(), serial);
  for (int i = 0; i < kCases; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)].payload,
              reference[static_cast<std::size_t>(i)].payload)
        << i;
    EXPECT_EQ(results[static_cast<std::size_t>(i)].error,
              reference[static_cast<std::size_t>(i)].error)
        << i;
  }
}

// ---------------------------------------------------------------------------
// ResultCache.
// ---------------------------------------------------------------------------

TEST(ResultCache, StoresAndLoadsAcrossInstances) {
  const std::string dir = scratch_dir("roundtrip");
  {
    exec::ResultCache cache(dir);
    ASSERT_TRUE(cache.enabled());
    EXPECT_FALSE(cache.load("missing").has_value());
    EXPECT_TRUE(cache.store("key-1", "payload\nwith\nnewlines"));
    EXPECT_TRUE(cache.store("key-2", std::string("\0binary\x1f", 8)));
  }
  exec::ResultCache cache(dir);  // a fresh process sees the same entries
  ASSERT_TRUE(cache.load("key-1").has_value());
  EXPECT_EQ(*cache.load("key-1"), "payload\nwith\nnewlines");
  ASSERT_TRUE(cache.load("key-2").has_value());
  EXPECT_EQ(*cache.load("key-2"), std::string("\0binary\x1f", 8));
  EXPECT_GE(cache.hits(), 2u);
}

TEST(ResultCache, CorruptEntryDegradesToAMissNeverToAWrongResult) {
  const std::string dir = scratch_dir("corrupt");
  exec::ResultCache cache(dir);
  ASSERT_TRUE(cache.store("key", "good payload"));
  // Clobber every entry file: the stored-key line no longer matches.
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    std::ofstream out(e.path(), std::ios::binary | std::ios::trunc);
    out << "garbage\nnot the payload";
  }
  EXPECT_FALSE(cache.load("key").has_value());
}

TEST(ResultCache, UnusableDirectoryDisablesTheCacheWithoutFailing) {
  const std::string file = scratch_dir("not_a_dir");
  std::ofstream(file) << "occupied";
  exec::ResultCache cache(file + "/sub");  // parent is a file: mkdir must fail
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.load("k").has_value());
  EXPECT_FALSE(cache.store("k", "v"));
}

TEST(ResultCache, WarmBatchExecutesNothing) {
  const std::string dir = scratch_dir("warm_batch");
  exec::ResultCache cache(dir);
  std::atomic<int> executions{0};
  const auto build = [&] {
    std::vector<exec::Case> cases;
    for (int i = 0; i < 6; ++i) {
      exec::Case c;
      c.cache_key = "case\x1f" + std::to_string(i);
      c.run = [&executions, i] {
        ++executions;
        return "r" + std::to_string(i);
      };
      cases.push_back(std::move(c));
    }
    return cases;
  };
  exec::BatchStats cold_stats;
  exec::BatchOptions opts;
  opts.thread_budget = 4;
  opts.cache = &cache;
  opts.stats = &cold_stats;
  const auto cold = exec::run_batch(build(), opts);
  EXPECT_EQ(executions.load(), 6);
  EXPECT_EQ(cold_stats.cache_hits, 0u);

  exec::BatchStats warm_stats;
  opts.stats = &warm_stats;
  const auto warm = exec::run_batch(build(), opts);
  EXPECT_EQ(executions.load(), 6) << "warm run must not execute any case";
  EXPECT_EQ(warm_stats.cache_hits, 6u);
  EXPECT_EQ(warm_stats.started, 0u);
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_TRUE(warm[i].from_cache);
    EXPECT_EQ(warm[i].payload, cold[i].payload);
  }
}

TEST(ResultCache, ErrorsAreNeverCached) {
  const std::string dir = scratch_dir("no_error_cache");
  exec::ResultCache cache(dir);
  std::atomic<int> executions{0};
  const auto build = [&] {
    std::vector<exec::Case> cases(1);
    cases[0].cache_key = "flaky";
    cases[0].run = [&executions]() -> std::string {
      if (++executions == 1) throw std::runtime_error("transient");
      return "recovered";
    };
    return cases;
  };
  exec::BatchOptions opts;
  opts.cache = &cache;
  EXPECT_EQ(exec::run_batch(build(), opts)[0].error, "transient");
  const auto second = exec::run_batch(build(), opts);
  EXPECT_EQ(second[0].payload, "recovered") << "the error must not have been cached";
  EXPECT_EQ(executions.load(), 2);
}

/// Stores `count` entries of ~`bytes` each with strictly increasing write
/// times (entry i is older than entry i+1), so oldest-first pruning order is
/// deterministic regardless of filesystem timestamp granularity.
void store_aged_entries(const exec::ResultCache& cache, const std::string& dir, int count,
                        std::size_t bytes) {
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(cache.store("entry-" + std::to_string(i), std::string(bytes, 'a' + i)));
  }
  // Re-stamp write times oldest-first by stored key (the key is each entry
  // file's first line).
  const auto now = fs::file_time_type::clock::now();
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    std::ifstream in(e.path(), std::ios::binary);
    std::string key;
    std::getline(in, key);
    const int i = std::stoi(key.substr(key.rfind('-') + 1));
    fs::last_write_time(e.path(), now - std::chrono::hours(count - i));
  }
}

TEST(ResultCache, CapPrunesOldestEntriesFirst) {
  const std::string dir = scratch_dir("prune_oldest");
  {
    exec::ResultCache cache(dir);
    store_aged_entries(cache, dir, 6, 1000);
  }
  // Measure one entry's on-disk size (payload + key line + framing) from the
  // directory: the unbounded cache never tracks its footprint.
  std::uint64_t total_bytes = 0;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (e.is_regular_file()) total_bytes += e.file_size();
  }
  const std::uint64_t entry_bytes = total_bytes / 6;
  ASSERT_GT(entry_bytes, 1000u);
  // Reopen with room for ~3 entries; the next store must prune the oldest.
  exec::ResultCache cache(dir, 3 * entry_bytes + entry_bytes / 2);
  ASSERT_TRUE(cache.store("entry-6", std::string(1000, 'g')));
  EXPECT_GE(cache.pruned(), 3u);
  EXPECT_LE(cache.approx_bytes(), cache.max_bytes());
  // Newest entries survive; the oldest are gone (a miss, never an error).
  EXPECT_TRUE(cache.load("entry-6").has_value());
  EXPECT_TRUE(cache.load("entry-5").has_value());
  EXPECT_FALSE(cache.load("entry-0").has_value());
  EXPECT_FALSE(cache.load("entry-1").has_value());
}

TEST(ResultCache, MaxBytesZeroMeansUnbounded) {
  const std::string dir = scratch_dir("prune_unbounded");
  exec::ResultCache cache(dir);  // default: no cap
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cache.store("k" + std::to_string(i), std::string(4096, 'x')));
  }
  EXPECT_EQ(cache.pruned(), 0u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(cache.load("k" + std::to_string(i)).has_value()) << i;
  }
}

TEST(ResultCache, PrunedEntriesAreRecomputedNotResurrected) {
  const std::string dir = scratch_dir("prune_recompute");
  exec::ResultCache cache(dir, 1);  // cap below a single entry
  ASSERT_TRUE(cache.store("only", "payload"));
  EXPECT_GE(cache.pruned(), 1u);
  EXPECT_FALSE(cache.load("only").has_value());
  // Storing again works: pruning never poisons a key.
  ASSERT_TRUE(cache.store("only", "payload"));
}

TEST(ResultCache, MachineFingerprintSeparatesPresetsAndNoiseSeeds) {
  const std::string a = exec::machine_fingerprint(sim::system_g());
  const std::string b = exec::machine_fingerprint(sim::dori());
  EXPECT_NE(a, b);
  auto g = sim::system_g();
  g.noise.seed += 1;
  EXPECT_NE(exec::machine_fingerprint(g), a);
}

// ---------------------------------------------------------------------------
// EnergyStudy on a warm cache: zero simulations, bit-identical results.
// ---------------------------------------------------------------------------

TEST(WarmCache, StudyRerunExecutesZeroSimulationsAndReproducesResults) {
  const std::string dir = scratch_dir("study");
  auto spec = sim::system_g();
  spec.noise.enabled = false;
  exec::ExecConfig ec;
  ec.jobs = 4;
  ec.cache_dir = dir;
  const double ns[] = {1 << 14, 1 << 15};
  const int ps[] = {2, 4};

  analysis::EnergyStudy cold(spec, analysis::make_ep_adapter(), /*measured=*/true, ec);
  cold.calibrate(ns, ps);
  const auto v_cold = cold.validate(1 << 16, 4);

  const std::uint64_t runs_before = sim::Engine::total_runs_started();
  analysis::EnergyStudy warm(spec, analysis::make_ep_adapter(), /*measured=*/true, ec);
  warm.calibrate(ns, ps);
  const auto v_warm = warm.validate(1 << 16, 4);
  EXPECT_EQ(sim::Engine::total_runs_started(), runs_before)
      << "warm-cache study rerun must execute zero simulations";

  // Bit equality on every simulation-derived quantity.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(v_warm.actual_j),
            std::bit_cast<std::uint64_t>(v_cold.actual_j));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(v_warm.actual_s),
            std::bit_cast<std::uint64_t>(v_cold.actual_s));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(v_warm.predicted_j),
            std::bit_cast<std::uint64_t>(v_cold.predicted_j));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(warm.machine_params().t_w),
            std::bit_cast<std::uint64_t>(cold.machine_params().t_w));
}

// ---------------------------------------------------------------------------
// Surfaces and sweeps: parallel must be byte-identical to serial.
// ---------------------------------------------------------------------------

TEST(Determinism, SurfaceGridIsIdenticalForEveryThreadBudget) {
  const auto machine = tools::nominal_machine_params(sim::system_g());
  model::FtWorkload ft;
  const int ps[] = {1, 4, 16, 64, 256};
  const double fs[] = {1.6, 2.0, 2.4, 2.8};
  exec::ExecConfig serial;  // jobs = 1
  exec::ExecConfig parallel;
  parallel.jobs = 8;
  const auto a = analysis::ee_surface_pf(machine, ft, 64.0 * 64 * 64, ps, fs, serial);
  const auto b = analysis::ee_surface_pf(machine, ft, 64.0 * 64 * 64, ps, fs, parallel);
  // Byte-for-byte CSV equality — exactly what the fig drivers emit.
  EXPECT_EQ(analysis::surface_table(a).to_csv(), analysis::surface_table(b).to_csv());
}

TEST(Determinism, ParallelRunSweepIsByteIdenticalToSerial) {
  constexpr std::uint64_t kSeed = 20260806ULL;
  check::SweepOptions serial;
  serial.fault.ring_allgather_off_by_one = true;  // guarantee failures + shrinks
  serial.exec.jobs = 1;
  check::SweepOptions parallel = serial;
  parallel.exec.jobs = 8;

  const auto a = check::run_sweep(kSeed, 200, serial);
  const auto b = check::run_sweep(kSeed, 200, parallel);

  EXPECT_EQ(a.summary(), b.summary());
  ASSERT_FALSE(a.failures.empty()) << "sweep generated no ring-allgather case";
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].original.repro(), b.failures[i].original.repro()) << i;
    EXPECT_EQ(a.failures[i].what, b.failures[i].what) << i;
    EXPECT_EQ(a.failures[i].shrunk_repro, b.failures[i].shrunk_repro) << i;
  }
}

// Regression for the shrinker state leak: shrinking the same failing config
// must produce byte-identical output no matter where in a sweep it was found.
TEST(Determinism, ShrunkReproIsIndependentOfSweepOffset) {
  constexpr std::uint64_t kSeed = 20260806ULL;
  check::FaultInjection fault;
  fault.ring_allgather_off_by_one = true;

  // Find a case the planted fault trips.
  int failing_index = -1;
  for (int i = 0; i < 400; ++i) {
    const check::CheckConfig cfg = check::generate_case(kSeed, i);
    if (cfg.op == check::OpKind::kAllgather &&
        cfg.algo == static_cast<int>(smpi::AllgatherAlgo::kRing) && cfg.elems > 0 &&
        cfg.p > 1 && !cfg.tuned) {
      failing_index = i;
      break;
    }
  }
  ASSERT_GE(failing_index, 0) << "generator never produced a fixed ring allgather";
  const std::string repro = check::generate_case(kSeed, failing_index).repro();

  // Sweep A reaches the case after shrinking earlier sweep positions' work;
  // sweep B starts directly at it. Before shrink() was made pure, the
  // shrinker's RNG state at arrival differed, and so did the output.
  check::SweepOptions from_zero;
  from_zero.fault = fault;
  const auto sweep_a = check::run_sweep(kSeed, failing_index + 1, from_zero);

  check::SweepOptions from_offset = from_zero;
  from_offset.start = failing_index;
  const auto sweep_b = check::run_sweep(kSeed, 1, from_offset);

  ASSERT_EQ(sweep_b.failures.size(), 1u);
  const std::string* shrunk_a = nullptr;
  for (const auto& f : sweep_a.failures) {
    if (f.original.repro() == repro) shrunk_a = &f.shrunk_repro;
  }
  ASSERT_NE(shrunk_a, nullptr) << "full sweep missed the planted failure";
  EXPECT_EQ(*shrunk_a, sweep_b.failures[0].shrunk_repro);

  // And the string-level entry point is a pure function of its inputs.
  const auto pred = check::failure_predicate(fault);
  const std::string direct_1 = check::shrink_repro(repro, pred);
  // Interleave an unrelated shrink to perturb any residual shared state.
  (void)check::shrink_repro(sweep_b.failures[0].shrunk_repro, pred, 40);
  const std::string direct_2 = check::shrink_repro(repro, pred);
  EXPECT_EQ(direct_1, direct_2);
}

// Chunked soak accounting: merged chunk stats equal the one-shot sweep.
TEST(Determinism, ChunkedSweepStatsMergeToTheOneShotSweep) {
  constexpr std::uint64_t kSeed = 97ULL;
  check::SweepOptions opts;
  const auto whole = check::run_sweep(kSeed, 60, opts);

  check::SweepStats merged;
  for (int start = 0; start < 60; start += 20) {
    check::SweepOptions chunk;
    chunk.start = start;
    merged.merge(check::run_sweep(kSeed, 20, chunk));
  }
  EXPECT_EQ(merged.summary(), whole.summary());
  EXPECT_EQ(merged.cases_per_op, whole.cases_per_op);
  EXPECT_EQ(merged.cases_per_algorithm, whole.cases_per_algorithm);
}

}  // namespace
