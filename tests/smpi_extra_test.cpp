// Tests for the extended collectives (scatter, scatterv, reduce_scatter,
// scan) plus their structural volume models and the sweep/pipeline send
// semantics they rely on.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "model/comm.hpp"
#include "sim/engine.hpp"
#include "smpi/comm.hpp"

namespace {

using namespace isoee;
using sim::Engine;
using sim::RankCtx;
using smpi::Comm;

sim::MachineSpec machine() {
  auto m = sim::system_g();
  m.noise.enabled = false;
  return m;
}

class ExtraCollectiveP : public ::testing::TestWithParam<int> {};

TEST_P(ExtraCollectiveP, ScatterDeliversBlocks) {
  const int p = GetParam();
  Engine eng(machine());
  eng.run(p, [p](RankCtx& ctx) {
    Comm comm(ctx);
    for (int root = 0; root < std::min(p, 3); ++root) {
      std::vector<int> in;
      if (ctx.rank() == root) {
        in.resize(static_cast<std::size_t>(4 * p));
        for (int i = 0; i < 4 * p; ++i) in[static_cast<std::size_t>(i)] = root * 10000 + i;
      }
      std::vector<int> out(4, -1);
      comm.scatter(std::span<const int>(in), std::span<int>(out), root);
      for (int j = 0; j < 4; ++j) {
        EXPECT_EQ(out[static_cast<std::size_t>(j)], root * 10000 + ctx.rank() * 4 + j);
      }
    }
  });
}

TEST_P(ExtraCollectiveP, ScattervUnevenCounts) {
  const int p = GetParam();
  Engine eng(machine());
  eng.run(p, [p](RankCtx& ctx) {
    Comm comm(ctx);
    std::vector<int> counts(static_cast<std::size_t>(p));
    int total = 0;
    for (int i = 0; i < p; ++i) {
      counts[static_cast<std::size_t>(i)] = 1 + (i % 3);
      total += counts[static_cast<std::size_t>(i)];
    }
    std::vector<int> in;
    if (ctx.rank() == 0) {
      in.resize(static_cast<std::size_t>(total));
      std::iota(in.begin(), in.end(), 0);
    }
    std::vector<int> out(static_cast<std::size_t>(counts[static_cast<std::size_t>(ctx.rank())]), -1);
    comm.scatterv(std::span<const int>(in), std::span<const int>(counts),
                  std::span<int>(out), 0);
    int offset = 0;
    for (int i = 0; i < ctx.rank(); ++i) offset += counts[static_cast<std::size_t>(i)];
    for (std::size_t j = 0; j < out.size(); ++j) {
      EXPECT_EQ(out[j], offset + static_cast<int>(j));
    }
  });
}

TEST_P(ExtraCollectiveP, ReduceScatterSumsAndSplits) {
  const int p = GetParam();
  Engine eng(machine());
  eng.run(p, [p](RankCtx& ctx) {
    Comm comm(ctx);
    const std::size_t block = 3;
    std::vector<long long> in(block * static_cast<std::size_t>(p));
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = ctx.rank() + static_cast<long long>(i);
    }
    std::vector<long long> out(block, -1);
    comm.reduce_scatter(std::span<const long long>(in), std::span<long long>(out),
                        [](long long& a, const long long& b) { a += b; });
    const long long rank_sum = static_cast<long long>(p) * (p - 1) / 2;
    for (std::size_t j = 0; j < block; ++j) {
      const auto idx = static_cast<long long>(block) * ctx.rank() + static_cast<long long>(j);
      EXPECT_EQ(out[j], rank_sum + idx * p);
    }
  });
}

TEST_P(ExtraCollectiveP, ScanComputesInclusivePrefix) {
  const int p = GetParam();
  Engine eng(machine());
  eng.run(p, [](RankCtx& ctx) {
    Comm comm(ctx);
    std::vector<double> in(2, ctx.rank() + 1.0), out(2);
    comm.scan(std::span<const double>(in), std::span<double>(out),
              [](double& a, const double& b) { a += b; });
    const double expect = (ctx.rank() + 1.0) * (ctx.rank() + 2.0) / 2.0;
    EXPECT_DOUBLE_EQ(out[0], expect);
    EXPECT_DOUBLE_EQ(out[1], expect);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ExtraCollectiveP,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16, 32));

// --- volume models match simulator counters --------------------------------------

TEST(ExtraVolumes, ScatterMatchesSimulator) {
  for (int p : {2, 4, 7, 16}) {
    Engine eng(machine());
    auto res = eng.run(p, [p](RankCtx& ctx) {
      Comm comm(ctx);
      std::vector<double> in(ctx.rank() == 0 ? static_cast<std::size_t>(8 * p) : 0, 1.0);
      std::vector<double> out(8);
      comm.scatter(std::span<const double>(in), std::span<double>(out), 0);
    });
    const auto vol = model::scatter_volume(p, 64.0);
    EXPECT_EQ(static_cast<double>(res.counters.messages_sent), vol.messages) << p;
    EXPECT_EQ(static_cast<double>(res.counters.bytes_sent), vol.bytes) << p;
  }
}

TEST(ExtraVolumes, ScanMatchesSimulator) {
  for (int p : {2, 3, 8, 16}) {
    Engine eng(machine());
    auto res = eng.run(p, [](RankCtx& ctx) {
      Comm comm(ctx);
      std::vector<double> in(4, 1.0), out(4);
      comm.scan(std::span<const double>(in), std::span<double>(out),
                [](double& a, const double& b) { a += b; });
    });
    const auto vol = model::scan_volume(p, 32.0);
    EXPECT_EQ(static_cast<double>(res.counters.messages_sent), vol.messages) << p;
    EXPECT_EQ(static_cast<double>(res.counters.bytes_sent), vol.bytes) << p;
  }
}

TEST(ExtraVolumes, ReduceScatterMatchesSimulator) {
  for (int p : {2, 4, 8}) {
    Engine eng(machine());
    const std::size_t block = 4;
    auto res = eng.run(p, [block](RankCtx& ctx) {
      Comm comm(ctx);
      std::vector<double> in(block * static_cast<std::size_t>(ctx.size()), 1.0);
      std::vector<double> out(block);
      comm.reduce_scatter(std::span<const double>(in), std::span<double>(out),
                          [](double& a, const double& b) { a += b; });
    });
    const auto vol = model::reduce_scatter_volume(p, block * 8.0);
    EXPECT_EQ(static_cast<double>(res.counters.messages_sent), vol.messages) << p;
    EXPECT_EQ(static_cast<double>(res.counters.bytes_sent), vol.bytes) << p;
  }
}

// --- timing property: scan pipeline depth -----------------------------------------

TEST(ExtraTiming, ScanCostLinearInP) {
  auto time_for = [&](int p) {
    Engine eng(machine());
    double worst = 0;
    std::mutex mu;
    eng.run(p, [&](RankCtx& ctx) {
      Comm comm(ctx);
      comm.barrier();
      std::vector<double> in(1024, 1.0), out(1024);
      const double t0 = ctx.now();
      comm.scan(std::span<const double>(in), std::span<double>(out),
                [](double& a, const double& b) { a += b; });
      std::lock_guard<std::mutex> lock(mu);
      worst = std::max(worst, ctx.now() - t0);
    });
    return worst;
  };
  const double t4 = time_for(4);
  const double t16 = time_for(16);
  // Linear pipeline: 15 hops vs 3 hops.
  EXPECT_NEAR(t16 / t4, 5.0, 1.0);
}

}  // namespace
