// Unit and property tests for the virtual-time cluster simulator: machine
// validation, timing semantics, DVFS, overlap, messaging, noise determinism,
// and energy conservation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "obs/sched_profiler.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/machine.hpp"

namespace {

using namespace isoee;
using sim::Engine;
using sim::MachineSpec;
using sim::RankCtx;

MachineSpec tiny_machine() {
  MachineSpec m;
  m.name = "tiny";
  m.nodes = 16;
  m.sockets_per_node = 2;
  m.cores_per_socket = 4;
  m.cpu.cpi = 1.0;
  m.cpu.base_ghz = 2.0;
  m.cpu.gears_ghz = {2.0, 1.5, 1.0};
  m.mem.caches = {sim::CacheLevel{32 * 1024, 1e-9}, sim::CacheLevel{1 << 20, 5e-9}};
  m.mem.dram_latency_s = 100e-9;
  m.net.t_s = 1e-6;
  m.net.bandwidth_Bps = 1e9;
  m.power.cpu_idle_w = 10;
  m.power.cpu_delta_w = 8;
  m.power.mem_idle_w = 4;
  m.power.mem_delta_w = 5;
  m.power.io_idle_w = 2;
  m.power.io_delta_w = 0;
  m.power.other_w = 14;
  m.power.gamma = 2.0;
  m.mem_overlap = 0.5;
  return m;
}

// --- machine spec ------------------------------------------------------------

TEST(Machine, PresetsValidate) {
  EXPECT_EQ(sim::system_g().validate(), "");
  EXPECT_EQ(sim::dori().validate(), "");
}

TEST(Machine, PresetTopologyMatchesPaper) {
  const auto g = sim::system_g();
  EXPECT_EQ(g.nodes, 325);
  EXPECT_EQ(g.cores_per_node(), 8);
  EXPECT_DOUBLE_EQ(g.cpu.base_ghz, 2.8);
  const auto d = sim::dori();
  EXPECT_EQ(d.nodes, 8);
  EXPECT_EQ(d.cores_per_node(), 4);
}

TEST(Machine, ValidateCatchesBadSpecs) {
  auto m = tiny_machine();
  m.nodes = 0;
  EXPECT_NE(m.validate(), "");
  m = tiny_machine();
  m.cpu.gears_ghz = {1.0, 2.0};  // ascending: invalid
  EXPECT_NE(m.validate(), "");
  m = tiny_machine();
  m.power.gamma = 0.5;
  EXPECT_NE(m.validate(), "");
  m = tiny_machine();
  m.mem_overlap = 1.5;
  EXPECT_NE(m.validate(), "");
}

TEST(Machine, TcScalesInverselyWithFrequency) {
  const auto m = tiny_machine();
  EXPECT_DOUBLE_EQ(m.cpu.t_c(2.0), 1.0 / 2.0e9);
  EXPECT_DOUBLE_EQ(m.cpu.t_c(1.0), 2.0 * m.cpu.t_c(2.0));
}

TEST(Machine, MemoryLatencyStaircase) {
  const auto m = tiny_machine();
  // Tiny working set: all L1.
  EXPECT_NEAR(m.mem.access_latency(16 * 1024), 1e-9, 1e-12);
  // Huge working set: mostly DRAM.
  EXPECT_GT(m.mem.access_latency(1ull << 30), 90e-9);
  // Monotone non-decreasing in working set.
  double prev = 0;
  for (std::uint64_t ws = 1024; ws <= (1ull << 28); ws *= 4) {
    const double lat = m.mem.access_latency(ws);
    EXPECT_GE(lat, prev);
    prev = lat;
  }
}

TEST(Machine, CpuDeltaPowerLaw) {
  const auto m = tiny_machine();
  const double at_base = m.power.cpu_delta_at(2.0, 2.0);
  EXPECT_DOUBLE_EQ(at_base, 8.0);
  // gamma = 2: half frequency -> quarter delta power.
  EXPECT_NEAR(m.power.cpu_delta_at(1.0, 2.0), 2.0, 1e-12);
}

// --- engine timing -----------------------------------------------------------

TEST(Engine, ComputeAdvancesClockByTc) {
  Engine eng(tiny_machine());
  auto res = eng.run(1, [](RankCtx& ctx) { ctx.compute(2'000'000'000); });
  // 2e9 instructions at CPI=1, 2 GHz -> 1 second.
  EXPECT_NEAR(res.makespan, 1.0, 1e-9);
  EXPECT_EQ(res.counters.instructions, 2'000'000'000u);
}

TEST(Engine, MemoryAdvancesClockByTm) {
  Engine eng(tiny_machine());
  auto res = eng.run(1, [](RankCtx& ctx) { ctx.memory(10'000'000); });
  EXPECT_NEAR(res.makespan, 1.0, 1e-9);  // 1e7 * 100ns
  EXPECT_EQ(res.counters.mem_accesses, 10'000'000u);
}

TEST(Engine, MemoryWithWorkingSetUsesHierarchy) {
  Engine eng(tiny_machine());
  auto res = eng.run(1, [](RankCtx& ctx) { ctx.memory(1'000'000, 16 * 1024); });
  EXPECT_NEAR(res.makespan, 1e-3, 1e-9);  // L1 latency 1ns
}

TEST(Engine, FusedRegionHidesOverlappedMemoryTime) {
  Engine eng(tiny_machine());  // mem_overlap = 0.5
  auto res = eng.run(1, [](RankCtx& ctx) {
    // compute: 1s; memory: 10M * 100ns = 1s. hidden = 0.5*min = 0.5s.
    ctx.compute_mem(2'000'000'000, 10'000'000);
  });
  EXPECT_NEAR(res.makespan, 1.5, 1e-9);
  const auto& t = res.ranks[0].time;
  EXPECT_NEAR(t.memory_issued, 1.0, 1e-9);  // full issued time kept for energy
  EXPECT_NEAR(t.alpha(), 1.5 / 2.0, 1e-9);  // emergent overlap factor
}

TEST(Engine, AlphaIsOneWithoutOverlap) {
  Engine eng(tiny_machine());
  auto res = eng.run(1, [](RankCtx& ctx) {
    ctx.compute(1'000'000'000);
    ctx.memory(1'000'000);
  });
  EXPECT_NEAR(res.ranks[0].alpha, 1.0, 1e-9);
}

TEST(Engine, DvfsSlowsComputeAndSnapsToGear) {
  Engine eng(tiny_machine());
  auto res = eng.run(1, [](RankCtx& ctx) {
    EXPECT_DOUBLE_EQ(ctx.set_frequency(1.0), 1.0);
    EXPECT_DOUBLE_EQ(ctx.set_frequency(1.2), 1.0);   // snaps to nearest gear
    EXPECT_DOUBLE_EQ(ctx.set_frequency(9.0), 2.0);   // clamps to fastest
    ctx.set_frequency(1.0);
    ctx.compute(2'000'000'000);  // at 1 GHz -> 2 seconds
  });
  EXPECT_NEAR(res.makespan, 2.0, 1e-9);
  EXPECT_GE(res.counters.dvfs_transitions, 2u);
}

TEST(Engine, RejectsBadRankCounts) {
  Engine eng(tiny_machine());
  EXPECT_THROW(eng.run(0, [](RankCtx&) {}), std::invalid_argument);
  EXPECT_THROW(eng.run(10'000, [](RankCtx&) {}), std::invalid_argument);
}

TEST(Engine, RankBodyExceptionPropagates) {
  Engine eng(tiny_machine());
  EXPECT_THROW(eng.run(1, [](RankCtx&) { throw std::runtime_error("boom"); }),
               std::runtime_error);
}

// Regression: a throwing rank used to leave its peers blocked in recv forever
// (the join below never returned). Now the engine poisons every mailbox on
// the first error, blocked ranks unwind with RankAbandoned, and run() rethrows
// the root cause.
TEST(Engine, ThrowingRankDoesNotDeadlockBlockedPeers) {
  Engine eng(tiny_machine());
  try {
    eng.run(4, [](RankCtx& ctx) {
      if (ctx.rank() == 1) throw std::runtime_error("rank 1 exploded");
      // Everyone else waits on a message rank 1 will never send.
      std::vector<double> buf(8);
      ctx.recv(1, 7, std::span<double>(buf));
    });
    FAIL() << "run() should have thrown";
  } catch (const sim::RankAbandoned&) {
    FAIL() << "run() rethrew the abandonment instead of the root cause";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 1 exploded");
  }
}

TEST(Engine, PoisonedMailboxStillDeliversArrivedMessages) {
  Engine eng(tiny_machine());
  std::atomic<int> delivered{0};
  try {
    eng.run(3, [&](RankCtx& ctx) {
      std::vector<double> buf(4, static_cast<double>(ctx.rank()));
      if (ctx.rank() == 0) {
        // Send first, then die: rank 1's first recv must still succeed.
        ctx.send(1, 0, std::span<const double>(buf));
        throw std::runtime_error("sender died after send");
      }
      if (ctx.rank() == 1) {
        ctx.recv(0, 0, std::span<double>(buf));  // message already en route
        delivered.fetch_add(1);
        ctx.recv(0, 1, std::span<double>(buf));  // never sent -> abandoned
      }
      if (ctx.rank() == 2) {
        ctx.recv(0, 0, std::span<double>(buf));  // never sent -> abandoned
      }
    });
    FAIL() << "run() should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "sender died after send");
  }
  EXPECT_EQ(delivered.load(), 1);
}

TEST(Engine, TotalRunsStartedCountsEveryRun) {
  Engine eng(tiny_machine());
  const std::uint64_t before = Engine::total_runs_started();
  eng.run(2, [](RankCtx& ctx) { ctx.compute(10); });
  eng.run(1, [](RankCtx& ctx) { ctx.compute(10); });
  EXPECT_EQ(Engine::total_runs_started(), before + 2);
}

// --- messaging ---------------------------------------------------------------

TEST(Engine, PingTransferTimeFollowsHockney) {
  auto m = tiny_machine();
  Engine eng(m);
  auto res = eng.run(2, [](RankCtx& ctx) {
    std::vector<double> buf(125000);  // 1 MB
    if (ctx.rank() == 0) {
      ctx.send(1, 0, std::span<const double>(buf));
    } else {
      ctx.recv(0, 0, std::span<double>(buf));
    }
  });
  // Receiver clock: sender t_s (1us) + 1MB at 1 GB/s = 1ms.
  EXPECT_NEAR(res.ranks[1].time.total, 1e-6 + 1e-3, 1e-9);
  EXPECT_EQ(res.counters.bytes_sent, 1'000'000u);
  EXPECT_EQ(res.counters.messages_sent, 1u);
}

TEST(Engine, MessagesCarryPayloadIntact) {
  Engine eng(tiny_machine());
  eng.run(2, [](RankCtx& ctx) {
    std::vector<int> data(100);
    if (ctx.rank() == 0) {
      for (int i = 0; i < 100; ++i) data[static_cast<size_t>(i)] = i * i;
      ctx.send(1, 7, std::span<const int>(data));
    } else {
      ctx.recv(0, 7, std::span<int>(data));
      for (int i = 0; i < 100; ++i) EXPECT_EQ(data[static_cast<size_t>(i)], i * i);
    }
  });
}

TEST(Engine, FifoOrderPerSourceAndTag) {
  Engine eng(tiny_machine());
  eng.run(2, [](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        ctx.send(1, 3, std::span<const int>(&i, 1));
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        int v = -1;
        ctx.recv(0, 3, std::span<int>(&v, 1));
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(Engine, IrecvWaitEnablesOverlap) {
  Engine eng(tiny_machine());
  auto res = eng.run(2, [](RankCtx& ctx) {
    std::vector<double> buf(125000);  // 1 MB -> 1 ms transfer
    if (ctx.rank() == 0) {
      ctx.send(1, 0, std::span<const double>(buf));
    } else {
      auto h = ctx.irecv(0, 0);
      ctx.compute(2'000'000'000);  // 1 s of compute while the message flies
      auto bytes = ctx.wait(h);
      EXPECT_EQ(bytes.size(), 1'000'000u);
    }
  });
  // Message arrived long before compute finished: no receive wait.
  EXPECT_NEAR(res.ranks[1].time.total, 1.0, 1e-6);
  EXPECT_LT(res.ranks[1].time.network, 2e-3);
}

TEST(Engine, SendToInvalidRankThrows) {
  Engine eng(tiny_machine());
  EXPECT_THROW(eng.run(1,
                       [](RankCtx& ctx) {
                         std::byte b{};
                         ctx.send_bytes(5, 0, std::span<const std::byte>(&b, 1));
                       }),
               std::out_of_range);
}

// --- determinism & noise -------------------------------------------------------

TEST(Engine, RepeatedRunsBitIdentical) {
  for (bool noisy : {false, true}) {
    auto m = tiny_machine();
    m.noise.enabled = noisy;
    auto body = [](RankCtx& ctx) {
      std::vector<double> v(1000, ctx.rank());
      ctx.compute(1'000'000);
      ctx.memory(10'000);
      if (ctx.rank() == 0) {
        ctx.send(1, 0, std::span<const double>(v));
      } else if (ctx.rank() == 1) {
        ctx.recv(0, 0, std::span<double>(v));
      }
    };
    Engine e1(m), e2(m);
    auto r1 = e1.run(4, body);
    auto r2 = e2.run(4, body);
    ASSERT_EQ(r1.ranks.size(), r2.ranks.size());
    EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
    EXPECT_DOUBLE_EQ(r1.energy.total, r2.energy.total);
    for (std::size_t i = 0; i < r1.ranks.size(); ++i) {
      EXPECT_DOUBLE_EQ(r1.ranks[i].time.total, r2.ranks[i].time.total);
    }
  }
}

TEST(Engine, NoiseShiftsTimesSlightly) {
  auto clean = tiny_machine();
  auto noisy = tiny_machine();
  noisy.noise.enabled = true;
  auto body = [](RankCtx& ctx) { ctx.compute(1'000'000'000); };
  auto rc = Engine(clean).run(1, body);
  auto rn = Engine(noisy).run(1, body);
  EXPECT_NE(rc.makespan, rn.makespan);
  // ...but only by a few percent (sigma = 0.02 on one long segment).
  EXPECT_NEAR(rn.makespan / rc.makespan, 1.0, 0.15);
}

// --- energy ------------------------------------------------------------------

TEST(Energy, IdleFloorPlusDeltas) {
  auto m = tiny_machine();
  Engine eng(m);
  auto res = eng.run(1, [](RankCtx& ctx) { ctx.compute(2'000'000'000); });
  // 1 second at full tilt: idle floor = 30 W * 1 s; cpu delta = 8 W * 1 s.
  EXPECT_NEAR(res.energy.idle_floor, 30.0, 1e-6);
  EXPECT_NEAR(res.energy.active_increment, 8.0, 1e-6);
  EXPECT_NEAR(res.energy.total, 38.0, 1e-6);
}

TEST(Energy, ComponentsSumToTotal) {
  Engine eng(tiny_machine());
  auto res = eng.run(4, [](RankCtx& ctx) {
    ctx.compute(100'000'000);
    ctx.memory(100'000);
    if (ctx.rank() == 0) {
      std::vector<double> v(1000);
      ctx.send(1, 0, std::span<const double>(v));
    } else if (ctx.rank() == 1) {
      std::vector<double> v(1000);
      ctx.recv(0, 0, std::span<double>(v));
    }
  });
  const auto& e = res.energy;
  EXPECT_NEAR(e.total, e.cpu + e.memory + e.io + e.other, 1e-9);
  EXPECT_NEAR(e.total, e.idle_floor + e.active_increment, 1e-9);
}

TEST(Energy, DvfsDirectionDependsOnPowerBalance) {
  // Optimal frequency is f* = f0 * sqrt(P_idle / DeltaP0) for gamma = 2 and
  // compute-bound work. With a realistic idle floor (30 W) and a small CPU
  // delta (8 W), racing to idle wins — the paper's CG observation that
  // *higher* f improves energy efficiency. When dynamic power dominates,
  // scaling down wins instead. Both directions must emerge from the model.
  auto body_at = [](double ghz) {
    return [ghz](RankCtx& ctx) {
      ctx.set_frequency(ghz);
      ctx.compute(2'000'000'000);
    };
  };
  {
    auto m = tiny_machine();  // idle 30 W, delta 8 W -> faster is better
    auto fast = Engine(m).run(1, body_at(2.0));
    auto slow = Engine(m).run(1, body_at(1.0));
    EXPECT_LT(fast.energy.total, slow.energy.total);
  }
  {
    auto m = tiny_machine();
    m.power.cpu_delta_w = 120.0;  // dynamic power dominates -> slower is better
    auto fast = Engine(m).run(1, body_at(2.0));
    auto slow = Engine(m).run(1, body_at(1.0));
    EXPECT_LT(slow.energy.total, fast.energy.total);
  }
}

TEST(Energy, EarlyFinishersPadToMakespanAtIdle) {
  Engine eng(tiny_machine());
  auto res = eng.run(2, [](RankCtx& ctx) {
    if (ctx.rank() == 0) ctx.compute(2'000'000'000);  // 1 s
    // rank 1 does nothing: should be padded with 1 s idle.
  });
  EXPECT_NEAR(res.ranks[1].time.total, res.makespan, 1e-9);
  EXPECT_NEAR(res.ranks[1].time.idle, res.makespan, 1e-9);
  // Idle rank still burns the idle floor.
  EXPECT_NEAR(res.ranks[1].energy.total, 30.0 * res.makespan, 1e-6);
}

TEST(Energy, HigherFrequencyCostsMorePowerPerComputeSecond) {
  auto m = tiny_machine();
  auto res = Engine(m).run(1, [](RankCtx& ctx) {
    ctx.set_frequency(2.0);
    ctx.compute(1'000'000'000);
    ctx.set_frequency(1.0);
    ctx.compute(1'000'000'000);
  });
  // compute_by_ghz has both gears recorded.
  const auto& by = res.ranks[0].time.compute_by_ghz;
  ASSERT_EQ(by.size(), 2u);
  EXPECT_NEAR(by.at(2.0), 0.5, 1e-9);
  EXPECT_NEAR(by.at(1.0), 1.0, 1e-9);
}

// --- tracing ------------------------------------------------------------------

TEST(Trace, SegmentsAreContiguousAndCoverClock) {
  sim::EngineOptions opts;
  opts.record_trace = true;
  Engine eng(tiny_machine(), opts);
  auto res = eng.run(2, [](RankCtx& ctx) {
    ctx.compute(100'000'000);
    ctx.memory(1'000'000);
    if (ctx.rank() == 0) {
      std::vector<double> v(100);
      ctx.send(1, 0, std::span<const double>(v));
    } else {
      std::vector<double> v(100);
      ctx.recv(0, 0, std::span<double>(v));
    }
  });
  ASSERT_EQ(res.traces.size(), 2u);
  for (const auto& trace : res.traces) {
    ASSERT_FALSE(trace.empty());
    double cursor = 0.0;
    double covered = 0.0;
    for (const auto& seg : trace) {
      EXPECT_NEAR(seg.start, cursor, 1e-12);
      cursor = seg.start + seg.duration;
      covered += seg.duration;
    }
    EXPECT_NEAR(covered, res.makespan, 1e-9);
  }
}

// --- parameterised scaling properties -----------------------------------------

class EngineScaling : public ::testing::TestWithParam<int> {};

TEST_P(EngineScaling, EnergyGrowsWithRanksForFixedPerRankWork) {
  const int p = GetParam();
  Engine eng(tiny_machine());
  auto res = eng.run(p, [](RankCtx& ctx) { ctx.compute(100'000'000); });
  // Same per-rank work: makespan constant, total energy proportional to p.
  EXPECT_NEAR(res.makespan, 0.05, 1e-9);
  EXPECT_NEAR(res.energy.total, (30.0 + 8.0) * 0.05 * p, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Ranks, EngineScaling, ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128));

// --- fiber engine at scale -----------------------------------------------------
//
// ISSUE 7 acceptance tests: thousand-rank jobs on the fiber scheduler, with
// RunResult + trace digests byte-identical for every worker count, failure
// unwinding that leaks no fiber stacks, and cross-backend equality against
// the legacy thread-per-rank reference engine.

MachineSpec scale_machine() {
  MachineSpec m = tiny_machine();
  m.name = "tiny_4k";
  m.nodes = 512;  // 512 x 2 x 4 = 4096 core slots
  return m;
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Bit-exact digest of everything a RunResult observes: per-rank wall clock,
/// energy, alpha, counters, and (when traced) every Segment field. Two runs
/// digest equal iff the simulations were byte-identical.
std::uint64_t digest_result(const sim::RunResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a(h, &r.makespan, sizeof(r.makespan));
  h = fnv1a(h, &r.energy.total, sizeof(double));
  for (const sim::RankResult& rr : r.ranks) {
    h = fnv1a(h, &rr.time.total, sizeof(double));
    h = fnv1a(h, &rr.energy.total, sizeof(double));
    h = fnv1a(h, &rr.alpha, sizeof(double));
    h = fnv1a(h, &rr.counters, sizeof(sim::RankCounters));
  }
  for (const auto& trace : r.traces) {
    for (const sim::Segment& s : trace) {
      h = fnv1a(h, &s.start, sizeof(double));
      h = fnv1a(h, &s.duration, sizeof(double));
      const int act = static_cast<int>(s.activity);
      h = fnv1a(h, &act, sizeof(act));
      h = fnv1a(h, &s.ghz, sizeof(double));
    }
  }
  return h;
}

std::function<void(RankCtx&)> scale_ring_body(int p, int iters) {
  return [p, iters](RankCtx& ctx) {
    const int next = (ctx.rank() + 1) % p;
    const int prev = (ctx.rank() + p - 1) % p;
    double token[2] = {static_cast<double>(ctx.rank()), 0.0};
    for (int i = 0; i < iters; ++i) {
      ctx.compute(1000 + 10 * static_cast<std::uint64_t>(ctx.rank() % 7));
      ctx.send(next, i % 5, std::span<const double>(token));
      ctx.recv(prev, i % 5, std::span<double>(token));
    }
  };
}

TEST(EngineScale, RingAtP1024DigestsIdenticalAcrossWorkerCounts) {
  const MachineSpec m = scale_machine();
  std::uint64_t reference = 0;
  for (const int workers : {1, 2, 8}) {
    sim::EngineOptions opts;
    opts.record_trace = true;
    opts.workers = workers;
    Engine eng(m, opts);
    const auto res = eng.run(1024, scale_ring_body(1024, 10));
    ASSERT_EQ(res.ranks.size(), 1024u);
    EXPECT_GT(res.makespan, 0.0);
    const std::uint64_t d = digest_result(res);
    if (reference == 0) {
      reference = d;
    } else {
      EXPECT_EQ(d, reference) << "workers=" << workers;
    }
  }
}

TEST(EngineScale, AllreduceAtP1024DigestsIdenticalAcrossWorkerCounts) {
  // Recursive-doubling butterfly, hand-rolled so this stays a sim-layer test:
  // log2(p) rounds of pairwise exchange — heavy cross-shard traffic at every
  // distance, the pattern most likely to expose dispatch-order sensitivity.
  const auto body = [](RankCtx& ctx) {
    const int p = ctx.size();
    double acc[4] = {static_cast<double>(ctx.rank()), 1.0, 2.0, 3.0};
    for (int dist = 1; dist < p; dist <<= 1) {
      const int peer = ctx.rank() ^ dist;
      double in[4];
      ctx.send(peer, dist % 7, std::span<const double>(acc));
      ctx.recv(peer, dist % 7, std::span<double>(in));
      for (int k = 0; k < 4; ++k) acc[k] += in[k];
    }
    ctx.compute(500);
  };
  const MachineSpec m = scale_machine();
  std::uint64_t reference = 0;
  for (const int workers : {1, 2, 8}) {
    sim::EngineOptions opts;
    opts.record_trace = true;
    opts.workers = workers;
    Engine eng(m, opts);
    const auto res = eng.run(1024, body);
    const std::uint64_t d = digest_result(res);
    if (reference == 0) {
      reference = d;
    } else {
      EXPECT_EQ(d, reference) << "workers=" << workers;
    }
  }
}

TEST(EngineScale, RingAtP4096CompletesAndIsRepeatable) {
  const MachineSpec m = scale_machine();
  sim::EngineOptions opts;
  opts.workers = 2;
  Engine a(m, opts), b(m, opts);
  const auto r1 = a.run(4096, scale_ring_body(4096, 5));
  const auto r2 = b.run(4096, scale_ring_body(4096, 5));
  ASSERT_EQ(r1.ranks.size(), 4096u);
  EXPECT_GT(r1.makespan, 0.0);
  EXPECT_EQ(digest_result(r1), digest_result(r2));
}

TEST(EngineScale, FiberAndThreadBackendsAgreeBitForBit) {
  const MachineSpec m = scale_machine();
  sim::EngineOptions fib;
  fib.record_trace = true;
  fib.backend = sim::EngineBackend::kFibers;
  sim::EngineOptions thr = fib;
  thr.backend = sim::EngineBackend::kThreads;
  Engine ef(m, fib), et(m, thr);
  const auto rf = ef.run(128, scale_ring_body(128, 20));
  const auto rt = et.run(128, scale_ring_body(128, 20));
  EXPECT_EQ(digest_result(rf), digest_result(rt));
}

TEST(EngineScale, ProfilerEnabledRunIsByteIdenticalAndAttributed) {
  // The scheduler profiler observes host time only: with sampling on, the
  // simulated results must stay bit-identical to an unprofiled run, while the
  // samples land in known phases under the per-worker collapsed stacks.
  const MachineSpec m = scale_machine();
  sim::EngineOptions opts;
  opts.record_trace = true;
  opts.workers = 2;
  Engine plain(m, opts);
  const std::uint64_t reference = digest_result(plain.run(1024, scale_ring_body(1024, 10)));

  obs::SchedProfiler& prof = obs::sched_profiler();
  prof.reset();
  obs::SchedProfiler::Options popts;
  popts.interval_us = 100;
  prof.start(popts);
  // The sampler is wall-clock driven; on a loaded host one run can in theory
  // complete between wakeups, so retry (each run must digest identically).
  for (int attempt = 0; attempt < 5 && prof.total_samples() == 0; ++attempt) {
    Engine profiled(m, opts);
    EXPECT_EQ(digest_result(profiled.run(1024, scale_ring_body(1024, 10))), reference);
  }
  prof.stop();

  EXPECT_GT(prof.total_samples(), 0u);
  for (const auto& row : prof.report()) {
    EXPECT_GE(row.worker, 0);
    const bool known = row.phase == obs::SchedPhase::kIdle ||
                       row.phase == obs::SchedPhase::kHeapDispatch ||
                       row.phase == obs::SchedPhase::kFiberRun ||
                       row.phase == obs::SchedPhase::kMailboxWait;
    EXPECT_TRUE(known);
    EXPECT_EQ(row.rank >= 0, row.phase == obs::SchedPhase::kFiberRun);
  }
  const std::string collapsed = prof.collapsed();
  EXPECT_NE(collapsed.find("isoee_engine;worker_"), std::string::npos);
  prof.reset();
}

TEST(EngineScale, RankFailureAtP1024UnwindsAndLeaksNoFiberStacks) {
  const MachineSpec m = scale_machine();
  const auto failing = [](RankCtx& ctx) {
    if (ctx.rank() == 777) throw std::runtime_error("injected at scale");
    // Everyone else blocks on a message only their predecessor can send;
    // rank 778's predecessor is the dead rank, so the whole ring must be
    // unwound via mailbox poisoning rather than finishing normally.
    double buf[1];
    ctx.recv((ctx.rank() + 1023) % 1024, 1, std::span<double>(buf));
  };
  const auto run_once = [&] {
    sim::EngineOptions opts;
    opts.workers = 2;
    Engine eng(m, opts);
    EXPECT_THROW(eng.run(1024, failing), std::runtime_error);
  };
  run_once();
  // Steady state: every subsequent run returns exactly as many pooled stacks
  // as it borrowed. A leaked (never-unwound) fiber would make the pool level
  // drop run over run. (Under sanitizers the pool is compiled out and both
  // readings are 0 — the unwind itself is still exercised above.)
  const std::size_t level_after_first = sim::detail::Fiber::pooled_stacks();
  run_once();
  const std::size_t level_after_second = sim::detail::Fiber::pooled_stacks();
  EXPECT_EQ(level_after_first, level_after_second);
}

// --- misc engine surface ---------------------------------------------------------

TEST(Engine, IoChargesFlatDuration) {
  Engine eng(tiny_machine());
  auto res = eng.run(1, [](RankCtx& ctx) { ctx.io(0.25); });
  EXPECT_NEAR(res.makespan, 0.25, 1e-12);
  EXPECT_NEAR(res.ranks[0].time.io, 0.25, 1e-12);
}

TEST(Engine, RecvSizeMismatchThrows) {
  Engine eng(tiny_machine());
  EXPECT_THROW(eng.run(2,
                       [](RankCtx& ctx) {
                         double v = 1.0;
                         if (ctx.rank() == 0) {
                           ctx.send(1, 0, std::span<const double>(&v, 1));
                         } else {
                           double out[2];
                           ctx.recv(0, 0, std::span<double>(out, 2));  // wrong size
                         }
                       }),
               std::runtime_error);
}

TEST(Engine, WaitTwiceOnHandleThrows) {
  Engine eng(tiny_machine());
  EXPECT_THROW(eng.run(2,
                       [](RankCtx& ctx) {
                         double v = 1.0;
                         if (ctx.rank() == 0) {
                           ctx.send(1, 0, std::span<const double>(&v, 1));
                           ctx.send(1, 0, std::span<const double>(&v, 1));
                         } else {
                           auto h = ctx.irecv(0, 0);
                           (void)ctx.wait(h);
                           (void)ctx.wait(h);  // already completed
                         }
                       }),
               std::logic_error);
}

TEST(Engine, RunResultAggregatesMatchRankSums) {
  Engine eng(tiny_machine());
  auto res = eng.run(3, [](RankCtx& ctx) {
    ctx.compute(100'000'000 * static_cast<std::uint64_t>(ctx.rank() + 1));
    ctx.memory(10'000);
  });
  double e_sum = 0.0, instr = 0.0;
  for (const auto& r : res.ranks) {
    e_sum += r.energy.total;
    instr += static_cast<double>(r.counters.instructions);
  }
  EXPECT_NEAR(res.energy.total, e_sum, 1e-9);
  EXPECT_DOUBLE_EQ(static_cast<double>(res.counters.instructions), instr);
  // Ranks with less work are idle-padded to the makespan, which inflates
  // their measured alpha above 1 (imbalance absorbed into the factor).
  EXPECT_GE(res.mean_alpha(), 1.0);
  EXPECT_NEAR(res.ranks[2].alpha, 1.0, 1e-6);  // the busiest rank is pure work
}

TEST(Engine, MemoryZeroWorkingSetUsesDram) {
  const auto m = tiny_machine();
  Engine eng(m);
  auto res = eng.run(1, [](RankCtx& ctx) { ctx.memory(1'000'000, 0); });
  EXPECT_NEAR(res.makespan, 1'000'000 * m.mem.dram_latency_s, 1e-12);
}

TEST(Machine, AccessLatencyEdgeCases) {
  const auto m = tiny_machine();
  // Zero working set: innermost-level latency.
  EXPECT_DOUBLE_EQ(m.mem.access_latency(0), m.mem.caches.front().latency_s);
  // No caches at all: always DRAM.
  sim::MemorySpec bare;
  bare.dram_latency_s = 50e-9;
  EXPECT_DOUBLE_EQ(bare.access_latency(0), 50e-9);
  EXPECT_DOUBLE_EQ(bare.access_latency(1 << 20), 50e-9);
}

TEST(Engine, ComputeMemDegenerateArms) {
  Engine eng(tiny_machine());
  auto res = eng.run(1, [](RankCtx& ctx) {
    ctx.compute_mem(0, 1'000'000);     // memory-only path
    ctx.compute_mem(2'000'000'000, 0); // compute-only path
    ctx.compute_mem(0, 0);             // no-op
  });
  EXPECT_NEAR(res.makespan, 0.1 + 1.0, 1e-9);
  EXPECT_NEAR(res.ranks[0].alpha, 1.0, 1e-9);  // nothing fused, no overlap
}

}  // namespace
