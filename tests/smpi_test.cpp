// Tests for the message-passing layer: correctness of every collective over a
// sweep of rank counts (power-of-two and not), plus timing properties — in
// particular that pairwise-exchange all-to-all matches the Hockney closed form
// (p-1)(t_s + X t_w) the paper uses for FT.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "sim/engine.hpp"
#include "smpi/comm.hpp"

namespace {

using namespace isoee;
using sim::Engine;
using sim::RankCtx;
using smpi::Comm;

sim::MachineSpec fast_machine() {
  sim::MachineSpec m;
  m.name = "fast";
  m.nodes = 32;
  m.sockets_per_node = 2;
  m.cores_per_socket = 4;
  m.cpu.cpi = 1.0;
  m.cpu.base_ghz = 2.0;
  m.cpu.gears_ghz = {2.0, 1.0};
  m.mem.caches = {sim::CacheLevel{32 * 1024, 1e-9}};
  m.mem.dram_latency_s = 100e-9;
  m.net.t_s = 1e-6;
  m.net.bandwidth_Bps = 1e9;
  m.power.gamma = 2.0;
  m.mem_overlap = 0.5;
  return m;
}

class CollectiveP : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveP, BarrierCompletes) {
  const int p = GetParam();
  Engine eng(fast_machine());
  auto res = eng.run(p, [](RankCtx& ctx) {
    Comm comm(ctx);
    comm.barrier();
    comm.barrier();
  });
  if (p > 1) {
    EXPECT_GT(res.makespan, 0.0);
  } else {
    EXPECT_DOUBLE_EQ(res.makespan, 0.0);  // single-rank barrier is a no-op
  }
}

TEST_P(CollectiveP, BcastDeliversFromEveryRoot) {
  const int p = GetParam();
  Engine eng(fast_machine());
  eng.run(p, [p](RankCtx& ctx) {
    Comm comm(ctx);
    for (int root = 0; root < p; ++root) {
      std::vector<int> buf(16, ctx.rank() == root ? 1234 + root : -1);
      comm.bcast(std::span<int>(buf), root);
      for (int v : buf) EXPECT_EQ(v, 1234 + root);
    }
  });
}

TEST_P(CollectiveP, ReduceSumsToRoot) {
  const int p = GetParam();
  Engine eng(fast_machine());
  eng.run(p, [p](RankCtx& ctx) {
    Comm comm(ctx);
    std::vector<long long> in(8), out(8, -1);
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = ctx.rank() + static_cast<long long>(i);
    }
    comm.reduce_sum(std::span<const long long>(in), std::span<long long>(out), 0);
    if (ctx.rank() == 0) {
      const long long rank_sum = static_cast<long long>(p) * (p - 1) / 2;
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], rank_sum + static_cast<long long>(i) * p);
      }
    }
  });
}

TEST_P(CollectiveP, AllreduceMatchesReduceBcastAlgo) {
  const int p = GetParam();
  for (auto algo : {smpi::AllreduceAlgo::kRecursiveDoubling, smpi::AllreduceAlgo::kReduceBcast}) {
    Engine eng(fast_machine());
    eng.run(p, [p, algo](RankCtx& ctx) {
      smpi::CollectiveConfig cfg;
      cfg.allreduce = algo;
      Comm comm(ctx, cfg);
      std::vector<double> in(4, ctx.rank() + 1.0), out(4);
      comm.allreduce_sum(std::span<const double>(in), std::span<double>(out));
      const double expect = static_cast<double>(p) * (p + 1) / 2;
      for (double v : out) EXPECT_DOUBLE_EQ(v, expect);
    });
  }
}

TEST_P(CollectiveP, AllreduceMax) {
  const int p = GetParam();
  Engine eng(fast_machine());
  eng.run(p, [p](RankCtx& ctx) {
    Comm comm(ctx);
    double in = ctx.rank() * 1.5, out = -1;
    comm.allreduce_max(std::span<const double>(&in, 1), std::span<double>(&out, 1));
    EXPECT_DOUBLE_EQ(out, (p - 1) * 1.5);
  });
}

TEST_P(CollectiveP, ScalarAllreduceSum) {
  const int p = GetParam();
  Engine eng(fast_machine());
  eng.run(p, [p](RankCtx& ctx) {
    Comm comm(ctx);
    const double total = comm.allreduce_sum(1.0);
    EXPECT_DOUBLE_EQ(total, static_cast<double>(p));
  });
}

TEST_P(CollectiveP, AllgatherCollectsInRankOrder) {
  const int p = GetParam();
  Engine eng(fast_machine());
  eng.run(p, [p](RankCtx& ctx) {
    Comm comm(ctx);
    std::vector<int> in(3, ctx.rank());
    std::vector<int> out(static_cast<std::size_t>(3 * p), -1);
    comm.allgather(std::span<const int>(in), std::span<int>(out));
    for (int r = 0; r < p; ++r) {
      for (int j = 0; j < 3; ++j) EXPECT_EQ(out[static_cast<std::size_t>(3 * r + j)], r);
    }
  });
}

TEST_P(CollectiveP, AlltoallPermutesBlocks) {
  const int p = GetParam();
  for (auto algo : {smpi::AlltoallAlgo::kPairwise, smpi::AlltoallAlgo::kRing,
                    smpi::AlltoallAlgo::kNaive, smpi::AlltoallAlgo::kBruck}) {
    Engine eng(fast_machine());
    eng.run(p, [p, algo](RankCtx& ctx) {
      smpi::CollectiveConfig cfg;
      cfg.alltoall = algo;
      Comm comm(ctx, cfg);
      const std::size_t block = 4;
      std::vector<int> in(block * static_cast<std::size_t>(p));
      std::vector<int> out(in.size(), -1);
      // in block d carries value rank*1000 + d.
      for (int d = 0; d < p; ++d) {
        for (std::size_t j = 0; j < block; ++j) {
          in[static_cast<std::size_t>(d) * block + j] = ctx.rank() * 1000 + d;
        }
      }
      comm.alltoall(std::span<const int>(in), std::span<int>(out), block);
      // out block s must carry s*1000 + rank.
      for (int s = 0; s < p; ++s) {
        for (std::size_t j = 0; j < block; ++j) {
          EXPECT_EQ(out[static_cast<std::size_t>(s) * block + j], s * 1000 + ctx.rank());
        }
      }
    });
  }
}

TEST_P(CollectiveP, AlltoallvWithUnevenCounts) {
  const int p = GetParam();
  Engine eng(fast_machine());
  eng.run(p, [p](RankCtx& ctx) {
    Comm comm(ctx);
    const int r = ctx.rank();
    // Rank r sends (r + d) % 3 elements to destination d, all valued r.
    std::vector<int> send_counts(static_cast<std::size_t>(p)), recv_counts(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      send_counts[static_cast<std::size_t>(d)] = (r + d) % 3;
      recv_counts[static_cast<std::size_t>(d)] = (d + r) % 3;  // symmetric formula
    }
    std::size_t send_total = 0, recv_total = 0;
    for (int d = 0; d < p; ++d) {
      send_total += static_cast<std::size_t>(send_counts[static_cast<std::size_t>(d)]);
      recv_total += static_cast<std::size_t>(recv_counts[static_cast<std::size_t>(d)]);
    }
    std::vector<int> in(send_total, r), out(recv_total, -1);
    comm.alltoallv(std::span<const int>(in), std::span<const int>(send_counts),
                   std::span<int>(out), std::span<const int>(recv_counts));
    std::size_t off = 0;
    for (int s = 0; s < p; ++s) {
      for (int j = 0; j < recv_counts[static_cast<std::size_t>(s)]; ++j) {
        EXPECT_EQ(out[off++], s);
      }
    }
  });
}

TEST_P(CollectiveP, GatherToEveryRoot) {
  const int p = GetParam();
  Engine eng(fast_machine());
  eng.run(p, [p](RankCtx& ctx) {
    Comm comm(ctx);
    for (int root = 0; root < std::min(p, 3); ++root) {
      std::vector<int> in(2, ctx.rank() * 7);
      std::vector<int> out(static_cast<std::size_t>(2 * p), -1);
      comm.gather(std::span<const int>(in), std::span<int>(out), root);
      if (ctx.rank() == root) {
        for (int r = 0; r < p; ++r) {
          EXPECT_EQ(out[static_cast<std::size_t>(2 * r)], r * 7);
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveP,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16, 31, 32, 64));

// --- timing properties ---------------------------------------------------------

TEST(CollectiveTiming, PairwiseAlltoallMatchesHockneyClosedForm) {
  // The paper models FT's MPI_Alltoall as (p-1)(t_s + X t_w) (pairwise
  // exchange / Hockney). Our pairwise algorithm over the simulated network
  // should reproduce that within a small tolerance.
  auto m = fast_machine();
  for (int p : {4, 8, 16, 32}) {
    Engine eng(m);
    const std::size_t block = 1 << 12;  // ints per destination
    auto res = eng.run(p, [block](RankCtx& ctx) {
      Comm comm(ctx);
      comm.barrier();
      const int psize = ctx.size();
      std::vector<int> in(block * static_cast<std::size_t>(psize), ctx.rank());
      std::vector<int> out(in.size());
      const double t0 = ctx.now();
      comm.alltoall(std::span<const int>(in), std::span<int>(out), block);
      const double dt = ctx.now() - t0;
      const double X = static_cast<double>(block * sizeof(int));
      const auto& net = ctx.machine().net;
      const double hockney = (psize - 1) * (net.t_s + X * net.t_w());
      // Each step costs about one startup plus one transfer; allow 30%
      // slack for the send-injection serialization at the first step.
      EXPECT_NEAR(dt, hockney, 0.3 * hockney) << "p=" << psize;
    });
    (void)res;
  }
}

TEST(CollectiveTiming, BarrierCostLogarithmic) {
  auto m = fast_machine();
  auto barrier_time = [&](int p) {
    Engine eng(m);
    double t = 0;
    std::mutex mu;
    eng.run(p, [&](RankCtx& ctx) {
      Comm comm(ctx);
      comm.barrier();  // warm-up to synchronise clocks
      const double t0 = ctx.now();
      comm.barrier();
      std::lock_guard<std::mutex> lock(mu);
      t = std::max(t, ctx.now() - t0);
    });
    return t;
  };
  const double t8 = barrier_time(8);
  const double t64 = barrier_time(64);
  // Dissemination barrier: ~log2(p) rounds; 64 ranks ~ 2x the rounds of 8.
  EXPECT_LT(t64, 3.0 * t8);
  EXPECT_GT(t64, 1.2 * t8);
}

TEST(CollectiveTiming, AllreduceScalesWithLogP) {
  auto m = fast_machine();
  auto time_for = [&](int p) {
    Engine eng(m);
    double worst = 0;
    std::mutex mu;
    eng.run(p, [&](RankCtx& ctx) {
      Comm comm(ctx);
      comm.barrier();
      std::vector<double> in(1024, 1.0), out(1024);
      const double t0 = ctx.now();
      comm.allreduce_sum(std::span<const double>(in), std::span<double>(out));
      std::lock_guard<std::mutex> lock(mu);
      worst = std::max(worst, ctx.now() - t0);
    });
    return worst;
  };
  const double t4 = time_for(4);   // 2 rounds
  const double t16 = time_for(16); // 4 rounds
  EXPECT_NEAR(t16 / t4, 2.0, 0.8);
}

TEST(CollectiveTiming, NaiveAlltoallNoSlowerThanPairwise) {
  // Without bandwidth contention the naive algorithm is an optimistic lower
  // bound; document that relationship (see bench/ablation_alltoall).
  auto m = fast_machine();
  auto time_for = [&](smpi::AlltoallAlgo algo) {
    Engine eng(m);
    double worst = 0;
    std::mutex mu;
    eng.run(16, [&](RankCtx& ctx) {
      smpi::CollectiveConfig cfg;
      cfg.alltoall = algo;
      Comm comm(ctx, cfg);
      comm.barrier();
      const std::size_t block = 1 << 12;
      std::vector<int> in(block * 16, 0), out(block * 16);
      const double t0 = ctx.now();
      comm.alltoall(std::span<const int>(in), std::span<int>(out), block);
      std::lock_guard<std::mutex> lock(mu);
      worst = std::max(worst, ctx.now() - t0);
    });
    return worst;
  };
  EXPECT_LE(time_for(smpi::AlltoallAlgo::kNaive),
            time_for(smpi::AlltoallAlgo::kPairwise) * 1.05);
}

}  // namespace
