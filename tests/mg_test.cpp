// Tests for the MG kernel and its workload model: convergence, p-invariance
// with a pinned hierarchy, halo-communication structure, and fit recovery.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/study.hpp"
#include "npb/classes.hpp"
#include "npb/mg.hpp"
#include "sim/engine.hpp"

namespace {

using namespace isoee;
using sim::Engine;
using sim::RankCtx;

sim::MachineSpec machine() {
  auto m = sim::system_g();
  m.noise.enabled = false;
  return m;
}

npb::MgResult run_mg_once(const npb::MgConfig& cfg, int p) {
  Engine eng(machine());
  npb::MgResult out;
  eng.run(p, [&](RankCtx& ctx) {
    auto res = npb::mg_rank(ctx, cfg);
    if (ctx.rank() == 0) out = res;
  });
  return out;
}

TEST(Mg, ResidualDecreasesMonotonically) {
  npb::MgConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 32;
  cfg.cycles = 4;
  const auto out = run_mg_once(cfg, 4);
  ASSERT_EQ(out.residual_norms.size(), 4u);
  double prev = out.initial_residual;
  for (double norm : out.residual_norms) {
    EXPECT_LT(norm, prev);
    prev = norm;
  }
  // Multigrid should knock the residual down by orders of magnitude.
  EXPECT_LT(out.residual_norms.back(), 0.01 * out.initial_residual);
}

TEST(Mg, InvariantAcrossRanksWithPinnedHierarchy) {
  npb::MgConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 64;
  cfg.cycles = 3;
  cfg.max_levels = 3;
  // nz = 64: every p <= 8 supports the pinned 3-level hierarchy
  // (slab 64/p -> /2 -> /2 stays >= 2 planes).
  const auto base = run_mg_once(cfg, 1);
  for (int p : {2, 4, 8}) {
    const auto got = run_mg_once(cfg, p);
    EXPECT_NEAR(got.initial_residual, base.initial_residual,
                1e-9 * base.initial_residual);
    ASSERT_EQ(got.residual_norms.size(), base.residual_norms.size());
    for (std::size_t i = 0; i < base.residual_norms.size(); ++i) {
      EXPECT_NEAR(got.residual_norms[i], base.residual_norms[i],
                  1e-6 * base.residual_norms[i])
          << "p=" << p << " cycle=" << i;
    }
  }
}

TEST(Mg, DeeperHierarchyConvergesFaster) {
  npb::MgConfig shallow;
  shallow.nx = shallow.ny = shallow.nz = 64;
  shallow.cycles = 2;
  shallow.max_levels = 1;  // plain damped Jacobi
  npb::MgConfig deep = shallow;
  deep.max_levels = 4;
  const auto s = run_mg_once(shallow, 2);
  const auto d = run_mg_once(deep, 2);
  EXPECT_LT(d.residual_norms.back(), s.residual_norms.back());
}

TEST(Mg, RejectsInvalidDecomposition) {
  npb::MgConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 16;
  Engine eng(machine());
  EXPECT_THROW(eng.run(16, [&](RankCtx& ctx) { (void)npb::mg_rank(ctx, cfg); }),
               std::invalid_argument);  // nz/p = 1 < 2
  npb::MgConfig bad;
  bad.nx = 48;  // not a power of two
  EXPECT_THROW(eng.run(1, [&](RankCtx& ctx) { (void)npb::mg_rank(ctx, bad); }),
               std::invalid_argument);
}

TEST(Mg, HaloTrafficScalesWithPlaneAreaAndRanks) {
  npb::MgConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 32;
  cfg.cycles = 2;
  cfg.max_levels = 2;
  auto bytes_at = [&](int p) {
    Engine eng(machine());
    auto res = eng.run(p, [&](RankCtx& ctx) { (void)npb::mg_rank(ctx, cfg); });
    return static_cast<double>(res.counters.bytes_sent);
  };
  const double b2 = bytes_at(2);
  const double b8 = bytes_at(8);
  // Every rank exchanges the same two planes per stencil op: bytes ~ p.
  EXPECT_NEAR(b8 / b2, 4.0, 0.2);
}

TEST(Mg, SequentialHasNoMessages) {
  npb::MgConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 16;
  cfg.cycles = 1;
  Engine eng(machine());
  auto res = eng.run(1, [&](RankCtx& ctx) { (void)npb::mg_rank(ctx, cfg); });
  EXPECT_EQ(res.counters.messages_sent, 0u);
}

TEST(MgStudy, FitsAndValidatesWithinBand) {
  auto spec = machine();
  spec.noise.enabled = true;
  analysis::EnergyStudy study(spec, analysis::make_mg_adapter(npb::mg_class(npb::ProblemClass::S)));
  const double ns[] = {32. * 32 * 32, 64. * 64 * 64};
  const int ps[] = {2, 4};
  study.calibrate(ns, ps);
  for (int p : {1, 4, 8}) {
    const auto v = study.validate(32. * 32 * 32, p);
    EXPECT_LT(v.error_pct, 12.0) << "p=" << p;
  }
}

TEST(MgWorkload, ModelShapes) {
  model::MgWorkload mg;
  mg.wc_n = 400;
  mg.wm_n = 9;
  mg.msgs_p = 200;
  mg.bytes_n23p = 500;
  const auto a4 = mg.at(64. * 64 * 64, 4);
  const auto a16 = mg.at(64. * 64 * 64, 16);
  EXPECT_DOUBLE_EQ(a16.M / a4.M, 4.0);       // messages ~ p
  EXPECT_DOUBLE_EQ(a16.B / a4.B, 4.0);       // bytes ~ p at fixed n
  const auto big = mg.at(8.0 * 64 * 64 * 64, 4);
  EXPECT_NEAR(big.B / a4.B, 4.0, 1e-9);      // bytes ~ n^(2/3): 8x n -> 4x B
  EXPECT_EQ(mg.at(1000, 1).M, 0.0);          // no comm sequentially
}

}  // namespace
