#!/usr/bin/env python3
"""Bench baseline summaries and regression diffs (BENCH_<bench>.json).

Two subcommands:

  summarize --bench engine_throughput --input bench_out/engine_throughput.json \
            --out BENCH_engine_throughput.json
  summarize --bench service_load --input bench_out/service_load_latency.csv \
            --out BENCH_service_load.json

      Reads the bench's output artifact and writes a per-case summary with an
      explicit gate class per metric (see below).

  compare --baseline BENCH_engine_throughput.json --current current.json \
          [--tolerance 0.15]

      Diffs a freshly summarized run against the committed baseline and exits
      nonzero on a gated regression. Prints every metric's delta either way,
      so the uploaded CI log is a complete perf trajectory record.

Gate classes (recorded in the baseline file, so the policy is versioned with
the numbers):

  exact  structural/deterministic values (event counts, per-method request
         counts, error counts, the case set itself). Any difference fails:
         these are seed-determined, so a change means behaviour changed.
  pct    host-independent numeric values gated at +/- tolerance (default 15%).
  info   host-timing values (wall seconds, latency percentiles, throughput
         rates). Never gated — the baseline was recorded on a different
         machine than CI runs on — but the delta is printed and flagged
         when it exceeds the tolerance, so drift is visible in the artifact
         even though it cannot fail the build.
"""

import argparse
import csv
import json
import sys

SCHEMA = 1

# Metric -> gate class per bench. Anything not listed is "info".
GATES = {
    "engine_throughput": {"events": "exact"},
    "service_load": {"count": "exact", "errors": "exact"},
}

TIMING_METRICS = {
    "wall_s", "rank_s_per_s", "events_per_s", "speedup_vs_threads",
    "p50_ms", "p99_ms",
}


def fail(msg):
    print(f"bench_baseline: {msg}", file=sys.stderr)
    sys.exit(2)


def gate_for(bench, metric):
    return GATES.get(bench, {}).get(metric, "info")


# --- summarize --------------------------------------------------------------

def summarize_engine_throughput(path):
    """engine_throughput.json -> cases keyed workload/p/backend."""
    with open(path) as f:
        doc = json.load(f)
    cases = {}
    for row in doc["rows"]:
        key = f"{row['workload']}/{row['p']}/{row['backend']}"
        cases[key] = {
            m: row[m]
            for m in ("events", "wall_s", "rank_s_per_s", "events_per_s",
                      "speedup_vs_threads")
        }
    return cases


def summarize_service_load(path):
    """service_load_latency.csv -> cases keyed by method.

    The per-(method, tier) split is racy (a measured query lands in the cache
    or sim tier depending on what ran first), so counts are aggregated per
    method — that aggregate is determined by the request-stream seed. The
    latency percentiles keep the slowest tier's numbers (the tail that
    matters), recorded as info.
    """
    per_method = {}
    with open(path) as f:
        for row in csv.DictReader(f):
            m = per_method.setdefault(
                row["method"], {"count": 0, "p50_ms": 0.0, "p99_ms": 0.0})
            m["count"] += int(row["count"])
            m["p50_ms"] = max(m["p50_ms"], float(row["p50_ms"]))
            m["p99_ms"] = max(m["p99_ms"], float(row["p99_ms"]))
            if row["tier"] == "error":
                m["errors"] = m.get("errors", 0) + int(row["count"])
    for m in per_method.values():
        m.setdefault("errors", 0)
    return per_method


def cmd_summarize(args):
    if args.bench == "engine_throughput":
        cases = summarize_engine_throughput(args.input)
    elif args.bench == "service_load":
        cases = summarize_service_load(args.input)
    else:
        fail(f"unknown bench {args.bench!r} (engine_throughput | service_load)")
    doc = {
        "bench": args.bench,
        "schema": SCHEMA,
        "tolerance_pct": round(args.tolerance * 100),
        "cases": {
            key: {
                metric: {"gate": gate_for(args.bench, metric), "value": value}
                for metric, value in sorted(metrics.items())
            }
            for key, metrics in sorted(cases.items())
        },
    }
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    n = sum(len(m) for m in doc["cases"].values())
    print(f"[baseline] {args.out}: {len(doc['cases'])} cases, {n} metrics")
    return 0


# --- compare ----------------------------------------------------------------

def load_baseline(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema {doc.get('schema')} != {SCHEMA}")
    return doc


def cmd_compare(args):
    base = load_baseline(args.baseline)
    cur = load_baseline(args.current)
    if base["bench"] != cur["bench"]:
        fail(f"bench mismatch: {base['bench']} vs {cur['bench']}")
    tol = args.tolerance
    failures = []
    flagged = 0

    base_cases, cur_cases = base["cases"], cur["cases"]
    for key in sorted(set(base_cases) | set(cur_cases)):
        if key not in cur_cases:
            failures.append(f"case {key}: present in baseline, missing in current")
            continue
        if key not in base_cases:
            failures.append(f"case {key}: new in current, not in baseline")
            continue
        for metric in sorted(set(base_cases[key]) | set(cur_cases[key])):
            b = base_cases[key].get(metric)
            c = cur_cases[key].get(metric)
            if b is None or c is None:
                failures.append(f"{key}.{metric}: missing on one side")
                continue
            gate = b["gate"]
            bv, cv = b["value"], c["value"]
            delta = cv - bv
            pct = (delta / bv * 100.0) if bv else (0.0 if cv == bv else float("inf"))
            mark = ""
            if gate == "exact":
                if bv != cv:
                    mark = "FAIL"
                    failures.append(f"{key}.{metric}: exact {bv} -> {cv}")
            elif gate == "pct":
                if abs(pct) > tol * 100.0:
                    mark = "FAIL"
                    failures.append(
                        f"{key}.{metric}: {bv:g} -> {cv:g} ({pct:+.1f}% "
                        f"beyond +/-{tol * 100:.0f}%)")
            elif abs(pct) > tol * 100.0:
                mark = "drift"  # info: visible, never fatal
                flagged += 1
            print(f"  {key:32s} {metric:20s} [{gate:5s}] "
                  f"{bv:>12g} -> {cv:>12g}  {pct:+7.1f}%  {mark}")

    print(f"compare: {len(failures)} gated failure(s), "
          f"{flagged} info metric(s) beyond +/-{tol * 100:.0f}% "
          f"(timing drift, not gated)")
    for f_ in failures:
        print(f"  FAIL {f_}", file=sys.stderr)
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = ap.add_subparsers(dest="cmd", required=True)

    s = sub.add_parser("summarize", help="write BENCH_<bench>.json from a run")
    s.add_argument("--bench", required=True)
    s.add_argument("--input", required=True,
                   help="engine_throughput.json or service_load_latency.csv")
    s.add_argument("--out", required=True)
    s.add_argument("--tolerance", type=float, default=0.15)
    s.set_defaults(fn=cmd_summarize)

    c = sub.add_parser("compare", help="diff a current summary vs the baseline")
    c.add_argument("--baseline", required=True)
    c.add_argument("--current", required=True)
    c.add_argument("--tolerance", type=float, default=0.15)
    c.set_defaults(fn=cmd_compare)

    args = ap.parse_args()
    sys.exit(args.fn(args))


if __name__ == "__main__":
    main()
