# Gnuplot recipes for the bench_out/ CSVs. Usage:
#   for b in build/bench/fig*; do $b; done
#   gnuplot scripts/plot_figures.gp
# PNGs land next to the CSVs in bench_out/.
set datafile separator ','
set terminal pngcairo size 900,600 font ',11'
set key outside

set output 'bench_out/fig02.png'
set title 'Fig 2: performance vs energy efficiency (fixed size)'
set xlabel 'processors'; set ylabel 'efficiency'; set yrange [0:1.05]
plot 'bench_out/fig02_FT.csv' skip 1 using 1:4 with linespoints title 'FT perf', \
     ''                        skip 1 using 1:5 with linespoints title 'FT energy', \
     'bench_out/fig02_CG.csv' skip 1 using 1:4 with linespoints title 'CG perf', \
     ''                        skip 1 using 1:5 with linespoints title 'CG energy'

set output 'bench_out/fig04.png'
set title 'Fig 4: prediction error on SystemG (p = 1..128)'
set style data histogram; set style fill solid 0.6
set xlabel 'benchmark'; set ylabel 'avg error (%)'; set yrange [0:10]
plot 'bench_out/fig04_error_summary.csv' skip 1 using (real(strcol(2)[1:4])):xtic(1) title 'measured'

unset style
set output 'bench_out/fig10.png'
set title 'Fig 10: component power profile of the FT run'
set xlabel 'time (s)'; set ylabel 'watts'; set yrange [0:*]; set style data lines
plot 'bench_out/fig10_power_trace.csv' skip 1 using 1:2 title 'CPU', \
     '' skip 1 using 1:3 title 'memory', \
     '' skip 1 using 1:4 title 'NIC', \
     '' skip 1 using 1:5 title 'other', \
     '' skip 1 using 1:6 title 'total'

set output 'bench_out/fig08.png'
set title 'Fig 8: CG EE vs p at several n (f = 2.8 GHz)'
set xlabel 'processors'; set ylabel 'EE'; set logscale x 2; set yrange [0:1.05]
plot for [c=2:7] 'bench_out/fig08_cg_ee_pn.csv' skip 1 using 1:c with linespoints \
     title columnheader(c)
