// Calibration CLI: run the full measurement pipeline once (microbenchmarks +
// workload fitting), save the result, and reuse it later for instant
// predictions — the workflow a cluster operator would wrap in a cron job.
//
//   # measure and save
//   ./build/examples/calibrate --benchmark=cg --out=cg_systemg.calib
//   # predict later, no simulation needed
//   ./build/examples/calibrate --load=cg_systemg.calib --n=75000 --p=64 --f=2.8
#include <cstdio>
#include <memory>

#include "analysis/study.hpp"
#include "model/serialize.hpp"
#include "npb/classes.hpp"
#include "util/cli.hpp"

using namespace isoee;

int main(int argc, char** argv) {
  util::Cli cli("calibrate — measure, save, and reuse model calibrations");
  cli.flag("benchmark", "cg", "workload to calibrate: ep | ft | cg | is | mg | ckpt | sweep")
      .flag("machine", "systemg", "cluster preset: systemg | dori")
      .flag("out", "", "path to write the calibration file")
      .flag("load", "", "load a calibration instead of measuring")
      .flag("n", "14000", "problem size for prediction")
      .flag("p", "32", "processor count for prediction")
      .flag("f", "0", "frequency in GHz for prediction (0 = base)");
  if (!cli.parse(argc, argv)) return 1;

  model::MachineParams machine_params;
  std::unique_ptr<model::WorkloadModel> workload;

  if (!cli.get("load").empty()) {
    auto file = model::load_calibration(cli.get("load"));
    if (!file) {
      std::fprintf(stderr, "failed to load %s\n", cli.get("load").c_str());
      return 1;
    }
    machine_params = file->machine;
    workload = std::move(file->workload);
    std::printf("loaded calibration: machine %s, workload %s\n",
                machine_params.name.c_str(), workload->name().c_str());
  } else {
    auto machine = cli.get("machine") == "dori" ? sim::dori() : sim::system_g();
    machine.noise.enabled = true;

    std::unique_ptr<analysis::BenchmarkAdapter> adapter;
    std::vector<double> ns;
    const std::string bench = cli.get("benchmark");
    if (bench == "ep") {
      adapter = analysis::make_ep_adapter(npb::ep_class(npb::ProblemClass::A));
      ns = {1 << 17, 1 << 18, 1 << 19};
    } else if (bench == "ft") {
      adapter = analysis::make_ft_adapter(npb::ft_class(npb::ProblemClass::A));
      ns = {32. * 32 * 32, 64. * 64 * 64, 128. * 128 * 128};
    } else if (bench == "cg") {
      adapter = analysis::make_cg_adapter(npb::cg_class(npb::ProblemClass::A));
      ns = {2000, 4000, 8000};
    } else if (bench == "is") {
      adapter = analysis::make_is_adapter(npb::is_class(npb::ProblemClass::A));
      ns = {1 << 17, 1 << 18, 1 << 19};
    } else if (bench == "mg") {
      adapter = analysis::make_mg_adapter(npb::mg_class(npb::ProblemClass::A));
      ns = {32. * 32 * 32, 64. * 64 * 64, 128. * 128 * 128};
    } else if (bench == "ckpt") {
      adapter = analysis::make_ckpt_adapter();
      ns = {1 << 17, 1 << 18, 1 << 19};
    } else if (bench == "sweep") {
      adapter = analysis::make_sweep_adapter(npb::sweep_class(npb::ProblemClass::A));
      ns = {128. * 128, 256. * 256, 512. * 512};
    } else {
      std::fprintf(stderr, "unknown benchmark '%s'\n", bench.c_str());
      return 1;
    }

    std::printf("calibrating %s on %s...\n", bench.c_str(), machine.name.c_str());
    analysis::EnergyStudy study(machine, std::move(adapter));
    const int ps[] = {2, 4, 8};
    study.calibrate(ns, ps);
    machine_params = study.machine_params();
    workload = model::parse_workload(model::serialize(study.workload()));

    if (!cli.get("out").empty()) {
      if (model::save_calibration(cli.get("out"), machine_params, *workload)) {
        std::printf("saved calibration to %s\n", cli.get("out").c_str());
      } else {
        std::fprintf(stderr, "failed to write %s\n", cli.get("out").c_str());
        return 1;
      }
    } else {
      std::fputs(model::serialize(machine_params).c_str(), stdout);
      std::fputs(model::serialize(*workload).c_str(), stdout);
    }
  }

  // Prediction at the requested point.
  const double n = cli.get_double("n");
  const int p = static_cast<int>(cli.get_int("p"));
  const double f = cli.get_double("f") > 0 ? cli.get_double("f") : machine_params.base_ghz;
  model::IsoEnergyModel model(machine_params.at_frequency(f));
  const auto app = workload->at(n, p);
  const auto perf = model.predict_performance(app);
  const auto energy = model.predict_energy(app);
  std::printf("\nprediction at n=%.0f p=%d f=%.1f GHz:\n", n, p, f);
  std::printf("  Tp = %.4f s   speedup = %.2f   perf-eff = %.4f\n", perf.Tp, perf.speedup,
              perf.perf_efficiency);
  std::printf("  Ep = %.1f J   EEF = %.4f   EE = %.4f\n", energy.Ep, energy.EEF, energy.EE);
  return 0;
}
