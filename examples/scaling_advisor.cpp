// Scaling advisor: the paper's decision-making loop as a command-line tool.
//
// Given a benchmark (ep | ft | cg | is), a machine (systemg | dori) and a
// target iso-energy-efficiency, the advisor calibrates the machine vector
// with the microbenchmark tools, fits the application's workload vector from
// small simulated runs, and then answers:
//
//   * how many processors the job can use before EE falls below the target,
//   * the iso-EE contour n(p): problem size needed to hold the target,
//   * the best DVFS gear per processor count.
//
// Example:  ./build/examples/scaling_advisor --benchmark=cg --target=0.8
#include <cstdio>
#include <memory>

#include "analysis/study.hpp"
#include "model/isocontour.hpp"
#include "npb/classes.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace isoee;

int main(int argc, char** argv) {
  util::Cli cli("scaling_advisor — iso-energy-efficiency scaling decisions");
  cli.flag("benchmark", "cg", "workload: ep | ft | cg | is | mg")
      .flag("machine", "systemg", "cluster preset: systemg | dori")
      .flag("target", "0.8", "EE target to maintain")
      .flag("n", "0", "problem size (0 = benchmark class default)")
      .flag("pmax", "256", "largest processor count to consider");
  if (!cli.parse(argc, argv)) return 1;

  auto machine = cli.get("machine") == "dori" ? sim::dori() : sim::system_g();
  machine.noise.enabled = true;

  const std::string bench = cli.get("benchmark");
  std::unique_ptr<analysis::BenchmarkAdapter> adapter;
  std::vector<double> calib_ns;
  if (bench == "ep") {
    adapter = analysis::make_ep_adapter(npb::ep_class(npb::ProblemClass::A));
    calib_ns = {1 << 17, 1 << 18, 1 << 19};
  } else if (bench == "ft") {
    adapter = analysis::make_ft_adapter(npb::ft_class(npb::ProblemClass::A));
    calib_ns = {32. * 32 * 32, 64. * 64 * 64, 128. * 128 * 128};
  } else if (bench == "cg") {
    adapter = analysis::make_cg_adapter(npb::cg_class(npb::ProblemClass::A));
    calib_ns = {2000, 4000, 8000};
  } else if (bench == "is") {
    adapter = analysis::make_is_adapter(npb::is_class(npb::ProblemClass::A));
    calib_ns = {1 << 17, 1 << 18, 1 << 19};
  } else if (bench == "mg") {
    adapter = analysis::make_mg_adapter(npb::mg_class(npb::ProblemClass::A));
    calib_ns = {16. * 16 * 16, 32. * 32 * 32, 64. * 64 * 64};
  } else {
    std::fprintf(stderr, "unknown benchmark '%s'\n", bench.c_str());
    return 1;
  }
  const double n = cli.get_double("n") > 0 ? cli.get_double("n") : adapter->default_n();
  const double target = cli.get_double("target");
  const int p_max = static_cast<int>(cli.get_int("pmax"));

  std::printf("calibrating machine vector on %s and fitting the %s workload model...\n",
              machine.name.c_str(), bench.c_str());
  analysis::EnergyStudy study(machine, std::move(adapter));
  const int calib_ps[] = {2, 4, 8};
  study.calibrate(calib_ns, calib_ps);

  const auto& mp = study.machine_params();
  const auto& wl = study.workload();
  const double f = mp.base_ghz;

  const int p_ok = model::max_processors(mp, wl, n, f, target, p_max);
  std::printf("\nAt n = %.0f and f = %.1f GHz, EE stays >= %.2f up to p = %d", n, f, target,
              p_ok);
  std::printf(" (EE(p=%d) = %.4f).\n", p_ok, model::ee_at(mp, wl, n, p_ok, f));

  std::printf("\nIso-EE contour (problem size needed to hold EE >= %.2f):\n", target);
  util::Table contour({"p", "required n", "EE achieved", "best gear (GHz)"});
  const std::vector<int> ps = {2, 4, 8, 16, 32, 64, 128, 256};
  const double gears[] = {2.8, 2.4, 2.0, 1.6};
  for (int p : ps) {
    if (p > p_max) break;
    const double req = model::required_problem_size(mp, wl, p, f, target, 1e2, 1e12);
    const double best = model::best_frequency_for_ee(mp, wl, n, p, gears);
    contour.add_row({util::num(p), req > 0 ? util::sci(req, 2) : "unreachable",
                     req > 0 ? util::num(model::ee_at(mp, wl, req, p, f), 4) : "-",
                     util::num(best, 1)});
  }
  std::fputs(contour.to_string().c_str(), stdout);
  return 0;
}
