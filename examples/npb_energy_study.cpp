// NPB energy study: run a benchmark on the simulated cluster with the
// PowerPack-style instrumentation and report what the paper's measurement
// stack reports — per-component energy, per-phase time/energy attribution,
// and performance/energy efficiency across processor counts.
//
// Example:  ./build/examples/npb_energy_study --benchmark=ft --class=A --p=1,2,4,8
#include <cstdio>
#include <sstream>

#include "analysis/runner.hpp"
#include "npb/classes.hpp"
#include "powerpack/phases.hpp"
#include "powerpack/profiler.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace isoee;

namespace {

std::vector<int> parse_ints(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoi(item));
  return out;
}

sim::RunResult run_benchmark(const std::string& name, const sim::MachineSpec& machine,
                             npb::ProblemClass cls, int p,
                             const analysis::RunOptions& options) {
  if (name == "ep") return analysis::run_ep(machine, npb::ep_class(cls), p, options);
  if (name == "ft") return analysis::run_ft(machine, npb::ft_class(cls), p, options);
  if (name == "cg") return analysis::run_cg(machine, npb::cg_class(cls), p, options);
  if (name == "is") return analysis::run_is(machine, npb::is_class(cls), p, options);
  if (name == "mg") return analysis::run_mg(machine, npb::mg_class(cls), p, options);
  if (name == "sweep") return analysis::run_sweep(machine, npb::sweep_class(cls), p, options);
  if (name == "ckpt") return analysis::run_ckpt(machine, npb::CkptConfig(), p, options);
  throw std::invalid_argument("unknown benchmark: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("npb_energy_study — PowerPack-style energy analysis of an NPB kernel");
  cli.flag("benchmark", "ft", "workload: ep | ft | cg | is | mg | sweep | ckpt")
      .flag("class", "A", "problem class: S | W | A | B")
      .flag("p", "1,2,4,8,16", "comma-separated processor counts")
      .flag("machine", "systemg", "cluster preset: systemg | dori");
  if (!cli.parse(argc, argv)) return 1;

  auto machine = cli.get("machine") == "dori" ? sim::dori() : sim::system_g();
  machine.noise.enabled = true;
  const auto cls = npb::parse_class(cli.get("class"));
  const auto ps = parse_ints(cli.get("p"));
  const std::string bench = cli.get("benchmark");

  std::printf("%s class %s on %s\n\n", bench.c_str(), cli.get("class").c_str(),
              machine.name.c_str());

  util::Table sweep({"p", "time_s", "energy_J", "cpu_J", "mem_J", "nic_J", "other_J",
                     "perf_eff", "energy_eff", "alpha"});
  double t1 = 0, e1 = 0;
  for (int p : ps) {
    const auto run = run_benchmark(bench, machine, cls, p, analysis::RunOptions());
    if (p == ps.front()) {
      t1 = run.makespan * p;  // normalise to the first configuration
      e1 = run.total_energy_j();
    }
    sweep.add_row({util::num(p), util::num(run.makespan, 4),
                   util::num(run.energy.total, 1), util::num(run.energy.cpu, 1),
                   util::num(run.energy.memory, 1), util::num(run.energy.io, 1),
                   util::num(run.energy.other, 1),
                   util::num(t1 / (p * run.makespan), 4),
                   util::num(e1 / run.total_energy_j(), 4),
                   util::num(run.mean_alpha(), 3)});
  }
  std::fputs(sweep.to_string().c_str(), stdout);

  // Detailed phase/energy attribution at the largest p.
  const int p_detail = ps.back();
  powerpack::PhaseLog phases;
  analysis::RunOptions options;
  options.record_trace = true;
  options.phases = &phases;
  const auto run = run_benchmark(bench, machine, cls, p_detail, options);
  powerpack::Profiler profiler(machine);

  std::printf("\nper-phase attribution at p = %d:\n", p_detail);
  util::Table phase_table({"phase", "occurrences", "time_s (all ranks)", "energy_J"});
  for (const auto& ph : powerpack::summarize_phases(phases, profiler, run.traces)) {
    phase_table.add_row({ph.name, util::num(ph.occurrences), util::num(ph.time_s, 4),
                         util::num(ph.energy_j, 1)});
  }
  std::fputs(phase_table.to_string().c_str(), stdout);
  return 0;
}
