// Closed-loop controller demo — the paper's Fig 1, with the model in the
// "policy" box. A stream of job requests arrives at a cluster with a hard
// partition power cap; for each job the policy consults the calibrated
// iso-energy-efficiency model to pick (p, f) — fastest under the cap — and
// the decision is then *executed* in the simulator. A naive controller
// (always the whole partition at top gear, the pre-model default) runs the
// same stream for comparison.
//
// This is the paper's pitch made concrete: the controller no longer tunes
// opportunistically; the model bounds every decision's time and power before
// it is taken, and the measured outcome confirms the bound.
#include <cstdio>
#include <memory>

#include "analysis/policy.hpp"
#include "analysis/study.hpp"
#include "npb/classes.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace isoee;

namespace {

struct Job {
  std::string benchmark;
  double n;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("controller_loop — model-driven (p, f) selection under a power cap");
  cli.flag("cap", "1200", "partition average-power cap in watts")
      .flag("pmax", "64", "largest processor count available");
  if (!cli.parse(argc, argv)) return 1;
  const double cap_w = cli.get_double("cap");
  const int p_max = static_cast<int>(cli.get_int("pmax"));

  auto machine = sim::system_g();
  machine.noise.enabled = true;

  // Calibrate once per application class (the controller's "predictor" box).
  std::printf("calibrating policies on %s (cap %.0f W, pmax %d)...\n\n",
              machine.name.c_str(), cap_w, p_max);
  const int calib_ps[] = {2, 4, 8};
  analysis::EnergyStudy ft(machine, analysis::make_ft_adapter(npb::ft_class(npb::ProblemClass::A)));
  {
    const double ns[] = {32. * 32 * 32, 64. * 64 * 64, 128. * 128 * 128};
    ft.calibrate(ns, calib_ps);
  }
  analysis::EnergyStudy cg(machine, analysis::make_cg_adapter(npb::cg_class(npb::ProblemClass::A)));
  {
    const double ns[] = {2000, 4000, 8000};
    cg.calibrate(ns, calib_ps);
  }
  analysis::EnergyStudy ep(machine, analysis::make_ep_adapter(npb::ep_class(npb::ProblemClass::A)));
  {
    const double ns[] = {1 << 17, 1 << 18, 1 << 19};
    ep.calibrate(ns, calib_ps);
  }
  auto study_for = [&](const std::string& name) -> analysis::EnergyStudy& {
    if (name == "ft") return ft;
    if (name == "cg") return cg;
    return ep;
  };

  // The incoming job stream.
  const std::vector<Job> jobs = {
      {"ft", 64. * 64 * 64}, {"cg", 14000}, {"ep", 1 << 22},
      {"ft", 128. * 128 * 128}, {"cg", 28000}, {"ep", 1 << 23},
  };

  std::vector<int> ps;
  for (int p = 1; p <= p_max; p *= 2) ps.push_back(p);
  const double gears[] = {2.8, 2.4, 2.0, 1.6};

  util::Table table({"job", "n", "policy (p, f)", "pred_W", "meas_W", "meas_s", "meas_J",
                     "naive_J", "naive_W", "cap_ok"});
  double policy_total_j = 0, naive_total_j = 0, policy_total_s = 0, naive_total_s = 0;
  bool naive_violates = false;
  for (const auto& job : jobs) {
    auto& study = study_for(job.benchmark);
    const auto choice = analysis::best_under_power_cap(study.machine_params(),
                                                       study.workload(), job.n, ps, gears,
                                                       cap_w);
    if (!choice.feasible) {
      table.add_row({job.benchmark, util::num(job.n, 0), "infeasible"});
      continue;
    }
    // Execute the decision.
    const auto run = study.validate(job.n, choice.p, choice.f_ghz);
    const double meas_w = run.actual_j / run.actual_s;
    policy_total_j += run.actual_j;
    policy_total_s += run.actual_s;

    // The naive controller: whole partition, top gear.
    const auto naive = study.validate(job.n, p_max, 2.8);
    const double naive_w = naive.actual_j / naive.actual_s;
    naive_total_j += naive.actual_j;
    naive_total_s += naive.actual_s;
    if (naive_w > cap_w) naive_violates = true;

    table.add_row({job.benchmark, util::num(job.n, 0),
                   "p=" + util::num(choice.p) + " @" + util::num(choice.f_ghz, 1),
                   util::num(choice.avg_power_w, 0), util::num(meas_w, 0),
                   util::num(run.actual_s, 4), util::num(run.actual_j, 1),
                   util::num(naive.actual_j, 1), util::num(naive_w, 0),
                   meas_w <= cap_w * 1.05 ? "yes" : "NO"});
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::printf("\npolicy total:  %.1f J over %.3f s (all jobs under the %.0f W cap)\n",
              policy_total_j, policy_total_s, cap_w);
  std::printf("naive total:   %.1f J over %.3f s (%s)\n", naive_total_j, naive_total_s,
              naive_violates ? "VIOLATES the cap" : "within the cap");
  std::printf("\nThe policy column's predicted power (pred_W) bounds the measured power\n"
              "(meas_W) before each run — Fig 1's policy box, made quantitative.\n");
  return 0;
}
