// Quickstart: the iso-energy-efficiency workflow in ~60 lines.
//
//   1. Describe (or pick) a power-aware cluster.
//   2. Take a workload model (FT's closed form, fitted or default).
//   3. Evaluate EE(n, p, f) and ask scaling questions: how far can I scale
//      before efficiency drops below a target? What problem size restores it?
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "benchtools/calibrate.hpp"
#include "model/isocontour.hpp"
#include "model/workloads.hpp"
#include "sim/machine.hpp"
#include "util/table.hpp"

using namespace isoee;

int main() {
  // 1. Machine-dependent vector from the SystemG preset (use
  //    tools::calibrate_machine to *measure* it instead, as the paper does).
  const model::MachineParams machine = tools::nominal_machine_params(sim::system_g());
  std::printf("machine: %s  t_c=%.3g s  t_m=%.3g s  t_s=%.3g s  t_w=%.3g s/B\n",
              machine.name.c_str(), machine.t_c(), machine.t_m, machine.t_s, machine.t_w);

  // 2. Application-dependent vector: FT's closed-form workload model.
  model::FtWorkload ft;
  const double n = 128.0 * 128 * 128;  // grid points

  // 3a. EE across the (p, f) plane.
  util::Table table({"p", "EE @ 1.6 GHz", "EE @ 2.8 GHz", "predicted Ep (J)"});
  for (int p : {1, 4, 16, 64, 256}) {
    model::IsoEnergyModel at_base(machine.at_frequency(2.8));
    table.add_row({util::num(p), util::num(model::ee_at(machine, ft, n, p, 1.6), 4),
                   util::num(model::ee_at(machine, ft, n, p, 2.8), 4),
                   util::num(at_base.predict_energy(ft.at(n, p)).Ep, 1)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  // 3b. Scaling decisions (the paper's Section V.B use case).
  const double target = 0.90;
  const int p_max = model::max_processors(machine, ft, n, 2.8, target, 1024);
  std::printf("\nlargest p with EE >= %.2f at n = %.0f: p = %d\n", target, n, p_max);

  const double n_for_256 = model::required_problem_size(machine, ft, 256, 2.8, target,
                                                        1e3, 1e12);
  if (n_for_256 > 0) {
    std::printf("problem size restoring EE >= %.2f at p = 256: n = %.3g\n", target,
                n_for_256);
  }

  const double gears[] = {2.8, 2.4, 2.0, 1.6};
  std::printf("best DVFS gear for EE at (n, p=64): %.1f GHz\n",
              model::best_frequency_for_ee(machine, ft, n, 64, gears));
  return 0;
}
