// Power-budget advisor: power-constrained parallel computation (the title
// scenario). Given a benchmark and a hard average-power cap for the job's
// partition, enumerate (p, f) operating points with the model and pick the
// fastest one under the cap; also answer the deadline-constrained
// minimum-energy question.
//
// Example:  ./build/examples/power_budget --benchmark=ft --cap=2000
#include <cstdio>
#include <memory>

#include "analysis/policy.hpp"
#include "analysis/study.hpp"
#include "npb/classes.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace isoee;

int main(int argc, char** argv) {
  util::Cli cli("power_budget — fastest configuration under a power cap");
  cli.flag("benchmark", "ft", "workload: ep | ft | cg")
      .flag("cap", "2000", "average power cap in watts for the whole job")
      .flag("deadline", "0", "optional deadline in seconds (0 = none)")
      .flag("n", "0", "problem size (0 = class default)");
  if (!cli.parse(argc, argv)) return 1;

  auto machine = sim::system_g();
  machine.noise.enabled = true;

  std::unique_ptr<analysis::BenchmarkAdapter> adapter;
  std::vector<double> calib_ns;
  const std::string bench = cli.get("benchmark");
  if (bench == "ep") {
    adapter = analysis::make_ep_adapter(npb::ep_class(npb::ProblemClass::B));
    calib_ns = {1 << 18, 1 << 19, 1 << 20};
  } else if (bench == "ft") {
    adapter = analysis::make_ft_adapter(npb::ft_class(npb::ProblemClass::B));
    calib_ns = {32. * 32 * 32, 64. * 64 * 64, 128. * 128 * 128};
  } else if (bench == "cg") {
    adapter = analysis::make_cg_adapter(npb::cg_class(npb::ProblemClass::B));
    calib_ns = {4000, 8000, 16000};
  } else {
    std::fprintf(stderr, "unknown benchmark '%s'\n", bench.c_str());
    return 1;
  }
  const double n = cli.get_double("n") > 0 ? cli.get_double("n") : adapter->default_n();
  const double cap_w = cli.get_double("cap");

  std::printf("calibrating on %s...\n\n", machine.name.c_str());
  analysis::EnergyStudy study(machine, std::move(adapter));
  const int calib_ps[] = {2, 4, 8};
  study.calibrate(calib_ns, calib_ps);

  const int ps[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  const double gears[] = {2.8, 2.4, 2.0, 1.6};

  util::Table table({"p", "f_GHz", "time_s", "energy_J", "avg_power_W", "EE", "fits_cap"});
  for (const auto& c : analysis::enumerate_configs(study.machine_params(), study.workload(),
                                                   n, ps, gears)) {
    if (c.f_ghz != 2.8 && c.f_ghz != 1.6) continue;  // keep the table short
    table.add_row({util::num(c.p), util::num(c.f_ghz, 1), util::num(c.time_s, 4),
                   util::num(c.energy_j, 1), util::num(c.avg_power_w, 0),
                   util::num(c.ee, 4), c.avg_power_w <= cap_w ? "yes" : "no"});
  }
  std::fputs(table.to_string().c_str(), stdout);

  const auto best = analysis::best_under_power_cap(study.machine_params(), study.workload(),
                                                   n, ps, gears, cap_w);
  if (best.feasible) {
    std::printf("\nfastest under %.0f W: p = %d at %.1f GHz -> %.4f s, %.1f J, %.0f W avg\n",
                cap_w, best.p, best.f_ghz, best.time_s, best.energy_j, best.avg_power_w);
  } else {
    std::printf("\nno configuration fits a %.0f W cap at n = %.0f\n", cap_w, n);
  }

  const double deadline = cli.get_double("deadline");
  if (deadline > 0) {
    const auto eco = analysis::best_energy_under_deadline(
        study.machine_params(), study.workload(), n, ps, gears, deadline);
    if (eco.feasible) {
      std::printf("cheapest under %.2f s deadline: p = %d at %.1f GHz -> %.1f J\n", deadline,
                  eco.p, eco.f_ghz, eco.energy_j);
    } else {
      std::printf("no configuration meets a %.2f s deadline\n", deadline);
    }
  }

  // Quantitative DVFS bound at the chosen point (the Fig 1 policy question).
  if (best.feasible) {
    const auto impact = analysis::dvfs_impact(study.machine_params(), study.workload(), n,
                                              best.p, 2.8, 1.6);
    std::printf("\ndropping 2.8 -> 1.6 GHz at p = %d 'costs' %.1f%% time, %+.1f%% energy\n",
                best.p, 100.0 * (impact.time_ratio - 1.0),
                100.0 * (impact.energy_ratio - 1.0));
  }
  return 0;
}
