// DVFS explorer: the paper's Section V.B.7 question — when does scaling the
// CPU frequency up or down help energy?
//
// For a chosen benchmark and processor count, runs the *full simulation* at
// every DVFS gear (the ground truth) next to the analytical model's
// prediction, reporting time, energy, EE and the energy-delay product, and
// recommends gears. CG at scale shows the paper's finding: higher f improves
// energy efficiency in the strong-scaling regime.
//
// Example:  ./build/examples/dvfs_explorer --benchmark=cg --p=32
#include <cstdio>
#include <memory>

#include "analysis/study.hpp"
#include "npb/classes.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace isoee;

int main(int argc, char** argv) {
  util::Cli cli("dvfs_explorer — energy/performance across DVFS gears");
  cli.flag("benchmark", "cg", "workload: ep | ft | cg")
      .flag("p", "32", "processor count")
      .flag("machine", "systemg", "cluster preset: systemg | dori");
  if (!cli.parse(argc, argv)) return 1;

  auto machine = cli.get("machine") == "dori" ? sim::dori() : sim::system_g();
  machine.noise.enabled = true;
  const int p = static_cast<int>(cli.get_int("p"));
  const std::string bench = cli.get("benchmark");

  std::unique_ptr<analysis::BenchmarkAdapter> adapter;
  std::vector<double> calib_ns;
  double n = 0;
  if (bench == "ep") {
    adapter = analysis::make_ep_adapter(npb::ep_class(npb::ProblemClass::A));
    calib_ns = {1 << 17, 1 << 18, 1 << 19};
    n = 1 << 22;
  } else if (bench == "ft") {
    adapter = analysis::make_ft_adapter(npb::ft_class(npb::ProblemClass::A));
    calib_ns = {32. * 32 * 32, 64. * 64 * 64, 128. * 128 * 128};
    n = 64. * 64 * 64;
  } else if (bench == "cg") {
    adapter = analysis::make_cg_adapter(npb::cg_class(npb::ProblemClass::A));
    calib_ns = {2000, 4000, 8000};
    n = 14000;
  } else {
    std::fprintf(stderr, "unknown benchmark '%s'\n", bench.c_str());
    return 1;
  }

  std::printf("calibrating on %s...\n", machine.name.c_str());
  analysis::EnergyStudy study(machine, std::move(adapter));
  const int calib_ps[] = {2, 4, 8};
  study.calibrate(calib_ns, calib_ps);

  util::Table table({"f_GHz", "measured_s", "measured_J", "predicted_J", "model_EE",
                     "energy_delay"});
  double best_energy = 1e300, best_energy_f = 0;
  double best_ee = -1, best_ee_f = 0;
  for (double f : machine.cpu.gears_ghz) {
    const auto v = study.validate(n, p, f);
    const auto e = study.predict(n, p, f);
    table.add_row({util::num(f, 1), util::num(v.actual_s, 4), util::num(v.actual_j, 1),
                   util::num(v.predicted_j, 1), util::num(e.EE, 4),
                   util::num(v.actual_j * v.actual_s, 2)});
    if (v.actual_j < best_energy) {
      best_energy = v.actual_j;
      best_energy_f = f;
    }
    if (e.EE > best_ee) {
      best_ee = e.EE;
      best_ee_f = f;
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nmeasured energy-optimal gear: %.1f GHz\n", best_energy_f);
  std::printf("model EE-optimal gear:        %.1f GHz\n", best_ee_f);
  std::printf("(paper: for CG under strong scaling, scaling f *up* improves EE)\n");
  return 0;
}
