// Deterministic load generator for the what-if query service (src/service).
//
// Replays a seeded request stream — a mix of model-tier predicts, optimize
// and iso_contour queries, and simulation-backed measured predicts drawn from
// a small pool — against either an in-process Service (default) or a running
// isoee_serve over TCP (--connect=HOST:PORT), from --clients concurrent
// client threads. Reports per-endpoint/per-tier throughput and latency
// percentiles, and writes two CSVs:
//
//   service_load_latency.csv  qps, p50/p99 per (method, tier) — host timing,
//                             never diffed
//   service_load_digests.csv  per-request FNV-1a digest of the response's
//                             `result`/`error` fragment — deterministic, so
//                             CI diffs it across reruns and --jobs settings
//
// --verify additionally asserts the serving invariants end to end:
//   * N identical concurrent cold measured queries execute exactly 1
//     simulation (coalescing / warm-cache short-circuit, observed through
//     sim.runs_started via the stats endpoint);
//   * a warm rerun of every measured query answers 100% from the cache tier
//     with byte-identical result fragments;
//   * the `metrics` endpoint's service.latency_s.<method>.<tier> histograms
//     are well formed: cumulative bucket counts non-decreasing in le order,
//     the +Inf bucket equal to _count, and every method that appeared in the
//     stream has at least one family;
//   * the `stats` endpoint reports model_health "ok" — clean traffic against
//     an unperturbed model must never trip the drift watchdog;
//   * optionally (--assert-p99-ms) the model tier's p99 stays under a bound.
//
// Exits nonzero on any violated invariant, so CI can gate on it.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <map>
#include <set>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>

#include "benchtools/tracestats.hpp"
#include "exec/codec.hpp"
#include "exec/executor.hpp"
#include "obs/obs.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace isoee;

// --- transports ------------------------------------------------------------

/// One request/response exchange. Implementations are used from exactly one
/// client thread each.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual std::string send(const std::string& line) = 0;
};

class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(service::Service& service) : service_(service) {}
  std::string send(const std::string& line) override { return service_.handle_line(line); }

 private:
  service::Service& service_;
};

class TcpTransport final : public Transport {
 public:
  TcpTransport(const std::string& host, int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      throw std::runtime_error("bad --connect address " + host);
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      throw std::runtime_error("cannot connect to " + host + ":" + std::to_string(port));
    }
  }
  ~TcpTransport() override {
    if (fd_ >= 0) ::close(fd_);
  }

  std::string send(const std::string& line) override {
    std::string out = line + "\n";
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::write(fd_, out.data() + off, out.size() - off);
      if (n <= 0) throw std::runtime_error("short write to server");
      off += static_cast<std::size_t>(n);
    }
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string response = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return response;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0) throw std::runtime_error("server closed the connection");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

// --- request stream --------------------------------------------------------

struct GeneratedRequest {
  std::string method;  // for reporting buckets
  std::string line;
};

const char* kMachines[] = {"system_g", "dori"};
const char* kApps[] = {"EP", "FT", "CG", "IS"};

/// The measured-query pool: small, fast simulation points reused across the
/// stream so the cache warms and identical in-flight queries can coalesce.
std::vector<std::string> measured_pool() {
  std::vector<std::string> pool;
  for (int i = 0; i < 4; ++i) {
    const double n = 40000.0 * (i + 1);
    const int p = 1 << (i % 3);  // 1, 2, 4
    pool.push_back(
        R"({"machine":"system_g","app":"EP","n":)" + service::json_num(n) +
        R"(,"p":)" + std::to_string(p) + R"(,"measured":true})");
  }
  return pool;
}

GeneratedRequest generate(std::uint64_t seed, std::uint64_t index) {
  util::Xoshiro256 rng(exec::case_seed(seed, index));
  const double roll = rng.uniform();
  GeneratedRequest out;
  const std::string id = std::to_string(index);
  const std::string machine = kMachines[rng() % 2];
  const std::string app = kApps[rng() % 4];
  const double n = 1e5 * std::pow(10.0, 3.0 * rng.uniform());  // 1e5 .. 1e8
  const int p = 1 << (rng() % 9);                              // 1 .. 256

  if (roll < 0.70) {
    out.method = "predict";
    out.line = R"({"id":)" + id + R"(,"method":"predict","params":{"machine":")" + machine +
               R"(","app":")" + app + R"(","n":)" + service::json_num(n) + R"(,"p":)" +
               std::to_string(p) + "}}";
  } else if (roll < 0.80) {
    const bool cap = (rng() % 2) == 0;
    out.method = "optimize";
    out.line = R"({"id":)" + id + R"(,"method":"optimize","params":{"machine":")" + machine +
               R"(","app":")" + app + R"(","n":)" + service::json_num(n) +
               R"(,"objective":")" +
               (cap ? "min_time_under_cap" : "min_energy_under_deadline") + "\"," +
               (cap ? R"("cap_w":)" + service::json_num(500.0 + 4000.0 * rng.uniform())
                    : R"("deadline_s":)" + service::json_num(0.05 + rng.uniform())) +
               "}}";
  } else if (roll < 0.90) {
    // ps fixed small so the contour bisection stays cheap.
    out.method = "iso_contour";
    out.line = R"({"id":)" + id + R"(,"method":"iso_contour","params":{"machine":")" +
               machine + R"(","app":")" + app + R"(","target_ee":)" +
               service::json_num(0.3 + 0.6 * rng.uniform()) + R"(,"ps":[2,4,8,16]}})";
  } else {
    static const std::vector<std::string> pool = measured_pool();
    out.method = "measured";
    out.line = R"({"id":)" + id + R"(,"method":"predict","params":)" +
               pool[rng() % pool.size()] + "}";
  }
  return out;
}

// --- response accounting ---------------------------------------------------

struct Sample {
  std::string method;
  std::string tier;  // "model" | "cache" | "sim" | "error"
  double latency_s = 0.0;
  std::uint64_t digest = 0;  // FNV-1a of the result/error fragment
  std::string fragment;
};

/// Extracts the part of the response that must be deterministic: everything
/// from `"result":` / `"error":` on (tier and coalesced are excluded — they
/// depend on what raced ahead).
std::string stable_fragment(const std::string& response) {
  std::size_t pos = response.find("\"result\":");
  if (pos == std::string::npos) pos = response.find("\"error\":");
  return pos == std::string::npos ? response : response.substr(pos);
}

std::string tier_of(const std::string& response) {
  const std::size_t pos = response.find("\"tier\":\"");
  if (pos == std::string::npos) return "error";
  const std::size_t start = pos + 8;
  return response.substr(start, response.find('"', start) - start);
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx =
      std::min(v.size() - 1, static_cast<std::size_t>(q * static_cast<double>(v.size())));
  return v[idx];
}

std::uint64_t stats_runs_started(Transport& transport) {
  const std::string response = transport.send(R"({"method":"stats"})");
  const benchtools::JsonValue doc = benchtools::parse_json(response);
  const benchtools::JsonValue* result = doc.find("result");
  const benchtools::JsonValue* runs = result ? result->find("runs_started") : nullptr;
  if (runs == nullptr) throw std::runtime_error("stats response missing runs_started");
  return static_cast<std::uint64_t>(runs->number);
}

int fail(const char* what) {
  std::fprintf(stderr, "service_load: VERIFY FAILED: %s\n", what);
  return 1;
}

// --- metrics-endpoint verification ----------------------------------------

/// One latency-histogram family reassembled from the metrics snapshot:
/// cumulative bucket counts keyed by le bound (+Inf = infinity), plus the
/// family's _count row.
struct HistogramFamily {
  std::vector<std::pair<double, std::uint64_t>> buckets;  // (le, cumulative)
  std::uint64_t count = 0;
  bool have_count = false;
};

/// Groups the `metrics` response's service.latency_s.* rows into families.
/// Row names follow MetricsRegistry::snapshot(): `<family>_bucket{le="X"}`,
/// `<family>_sum`, `<family>_count`.
std::map<std::string, HistogramFamily> latency_families(Transport& transport) {
  const std::string response = transport.send(R"({"method":"metrics"})");
  const benchtools::JsonValue doc = benchtools::parse_json(response);
  const benchtools::JsonValue* result = doc.find("result");
  if (result == nullptr || !result->is(benchtools::JsonValue::Type::kObject)) {
    throw std::runtime_error("metrics response has no result object");
  }
  std::map<std::string, HistogramFamily> families;
  const std::string prefix = "service.latency_s.";
  for (const auto& [name, value] : result->object) {
    if (name.rfind(prefix, 0) != 0) continue;
    const benchtools::JsonValue* v = value.find("value");
    const double num = v != nullptr ? v->number : 0.0;
    if (const std::size_t b = name.find("_bucket{le=\""); b != std::string::npos) {
      const std::size_t start = b + 12;
      const std::size_t end = name.find('"', start);
      if (end == std::string::npos) continue;
      const std::string le = name.substr(start, end - start);
      const double bound = le == "+Inf" ? std::numeric_limits<double>::infinity()
                                        : std::strtod(le.c_str(), nullptr);
      families[name.substr(0, b)].buckets.emplace_back(
          bound, static_cast<std::uint64_t>(num));
    } else if (name.size() > 6 && name.rfind("_count") == name.size() - 6) {
      HistogramFamily& fam = families[name.substr(0, name.size() - 6)];
      fam.count = static_cast<std::uint64_t>(num);
      fam.have_count = true;
    }
  }
  for (auto& [name, fam] : families) {
    std::sort(fam.buckets.begin(), fam.buckets.end());
  }
  return families;
}

std::string stats_model_health(Transport& transport) {
  const std::string response = transport.send(R"({"method":"stats"})");
  const benchtools::JsonValue doc = benchtools::parse_json(response);
  const benchtools::JsonValue* result = doc.find("result");
  const benchtools::JsonValue* health = result ? result->find("model_health") : nullptr;
  if (health == nullptr) throw std::runtime_error("stats response missing model_health");
  return health->str;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("deterministic load generator + invariant checker for the query service");
  cli.no_positional()
      .flag("seed", "42", "request-stream seed")
      .flag("requests", "200", "number of generated requests")
      .flag("clients", "4", "concurrent client threads")
      .flag("connect", "", "HOST:PORT of a running isoee_serve (empty = in-process)")
      .flag("jobs", "2", "in-process service's simulation-tier thread budget")
      .flag("max-queue", "64", "in-process service's admission cap")
      .flag("cache-dir", "", "in-process service's result-cache directory")
      .flag("cache-max-mb", "0", "in-process result-cache cap in MiB (0 = unbounded)")
      .flag("csv-dir", "bench_out", "directory for the latency and digest CSVs")
      .flag("verify", "false", "assert coalescing + warm-cache invariants; exit 1 on failure")
      .flag("assert-p99-ms", "0", "fail if model-tier p99 exceeds this many ms (0 = off)")
      .flag("metrics-out", "", "write the metrics snapshot to this .json/.csv file")
      .flag("prom-out", "", "write a Prometheus text exposition snapshot to this file");
  if (!cli.parse(argc, argv)) return 1;

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const int requests = static_cast<int>(cli.get_int("requests"));
  const int clients = std::max(1, static_cast<int>(cli.get_int("clients")));

  // Target: in-process service, or a remote isoee_serve.
  std::unique_ptr<service::Service> local;
  std::string host;
  int port = 0;
  const std::string connect = cli.get("connect");
  if (connect.empty()) {
    service::ServiceConfig config;
    config.jobs = static_cast<int>(cli.get_int("jobs"));
    config.max_pending = static_cast<int>(cli.get_int("max-queue"));
    config.cache_dir = cli.get("cache-dir");
    config.cache_max_bytes =
        static_cast<std::uint64_t>(cli.get_int("cache-max-mb")) * (1ull << 20);
    local = std::make_unique<service::Service>(config);
  } else {
    const std::size_t colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--connect wants HOST:PORT\n");
      return 1;
    }
    host = connect.substr(0, colon);
    port = std::atoi(connect.c_str() + colon + 1);
  }
  auto make_transport = [&]() -> std::unique_ptr<Transport> {
    if (local) return std::make_unique<InProcessTransport>(*local);
    return std::make_unique<TcpTransport>(host, port);
  };

  std::printf("service_load: %d requests from seed %llu, %d clients, target %s\n", requests,
              static_cast<unsigned long long>(seed), clients,
              local ? "in-process" : connect.c_str());

  // --- main stream: strided across clients, results keyed by index ---------
  std::vector<Sample> samples(static_cast<std::size_t>(std::max(requests, 0)));
  std::atomic<bool> client_failed{false};
  const auto wall_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        // A transport failure (server gone, connection refused) must exit
        // with a diagnostic, not std::terminate the whole generator.
        try {
          const std::unique_ptr<Transport> transport = make_transport();
          for (int i = c; i < requests; i += clients) {
            const GeneratedRequest req = generate(seed, static_cast<std::uint64_t>(i));
            const auto t0 = std::chrono::steady_clock::now();
            const std::string response = transport->send(req.line);
            const auto t1 = std::chrono::steady_clock::now();
            Sample& s = samples[static_cast<std::size_t>(i)];
            s.method = req.method;
            s.tier = tier_of(response);
            s.latency_s = std::chrono::duration<double>(t1 - t0).count();
            s.fragment = stable_fragment(response);
            s.digest = exec::fnv1a(s.fragment);
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "service_load: client %d: %s\n", c, e.what());
          client_failed.store(true);
        }
      });
    }
    for (std::thread& t : workers) t.join();
  }
  if (client_failed.load()) return 1;
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  // --- report + CSVs --------------------------------------------------------
  std::map<std::pair<std::string, std::string>, std::vector<double>> buckets;
  for (const Sample& s : samples) buckets[{s.method, s.tier}].push_back(s.latency_s);

  util::Table latency({"method", "tier", "count", "p50_ms", "p99_ms"});
  std::printf("%d requests in %.3fs (%.0f qps)\n", requests, wall_s,
              wall_s > 0 ? requests / wall_s : 0.0);
  for (const auto& [key, lats] : buckets) {
    const double p50 = percentile(lats, 0.50) * 1e3;
    const double p99 = percentile(lats, 0.99) * 1e3;
    std::printf("  %-11s %-6s n=%-5zu p50=%8.3fms p99=%8.3fms\n", key.first.c_str(),
                key.second.c_str(), lats.size(), p50, p99);
    latency.add_row({key.first, key.second, std::to_string(lats.size()),
                     service::json_num(p50), service::json_num(p99)});
  }
  util::Table digests({"index", "method", "digest"});
  for (std::size_t i = 0; i < samples.size(); ++i) {
    digests.add_row({std::to_string(i), samples[i].method,
                     exec::encode_u64(samples[i].digest)});
  }
  const std::string csv_dir = cli.get("csv-dir");
  std::error_code ec;
  std::filesystem::create_directories(csv_dir, ec);
  if (latency.write_csv(csv_dir + "/service_load_latency.csv")) {
    std::printf("[csv] %s/service_load_latency.csv\n", csv_dir.c_str());
  }
  if (digests.write_csv(csv_dir + "/service_load_digests.csv")) {
    std::printf("[csv] %s/service_load_digests.csv\n", csv_dir.c_str());
  }

  int rc = 0;

  // The whole verify pass talks to the server from the main thread too; any
  // transport failure is a verification failure, not a terminate.
  if (cli.get_bool("verify")) try {
    // Invariant 1: N identical concurrent cold measured queries -> exactly
    // one simulation. The probe point is distinct from the pool, so it is
    // cold even after the main stream.
    const std::string probe =
        R"({"id":"probe","method":"predict","params":{"machine":"system_g","app":"EP",)"
        R"("n":123456,"p":2,"measured":true}})";
    {
      const std::unique_ptr<Transport> monitor = make_transport();
      const std::uint64_t runs_before = stats_runs_started(*monitor);
      const int volley = std::max(2, clients);
      std::vector<std::string> responses(static_cast<std::size_t>(volley));
      std::atomic<int> arrived{0};
      std::mutex mu;
      std::condition_variable cv;
      std::vector<std::thread> threads;
      for (int c = 0; c < volley; ++c) {
        threads.emplace_back([&, c] {
          // A failed client must still pass the barrier (or peers would wait
          // forever) and leaves its response empty, which the checks below
          // flag; it must never std::terminate the generator.
          std::unique_ptr<Transport> transport;
          try {
            transport = make_transport();
          } catch (const std::exception& e) {
            std::fprintf(stderr, "service_load: verify client %d: %s\n", c, e.what());
          }
          {
            // Barrier: maximize the overlap window so coalescing (not just
            // the warm cache) is exercised.
            std::unique_lock<std::mutex> lock(mu);
            if (++arrived == volley) {
              cv.notify_all();
            } else {
              cv.wait(lock, [&] { return arrived == volley; });
            }
          }
          if (!transport) return;
          try {
            responses[static_cast<std::size_t>(c)] = transport->send(probe);
          } catch (const std::exception& e) {
            std::fprintf(stderr, "service_load: verify client %d: %s\n", c, e.what());
          }
        });
      }
      for (std::thread& t : threads) t.join();
      const std::uint64_t runs_after = stats_runs_started(*monitor);
      std::printf("verify: %d concurrent identical cold queries -> %llu simulation(s)\n",
                  volley, static_cast<unsigned long long>(runs_after - runs_before));
      if (runs_after - runs_before != 1) {
        rc = fail("concurrent identical cold queries did not coalesce to 1 simulation");
      }
      for (const std::string& r : responses) {
        if (stable_fragment(r) != stable_fragment(responses[0])) {
          rc = fail("coalesced responses disagree");
        }
        if (r.find("\"ok\":true") == std::string::npos) {
          rc = fail("coalesced volley response not ok");
        }
      }
    }

    // Invariant 2: a warm rerun of every measured query is 100% cache tier
    // with byte-identical fragments. (Needs a cache; skipped without one.)
    const bool have_cache = !connect.empty() || !cli.get("cache-dir").empty();
    if (have_cache) {
      const std::unique_ptr<Transport> monitor = make_transport();
      const std::uint64_t runs_before = stats_runs_started(*monitor);
      const std::unique_ptr<Transport> transport = make_transport();
      std::size_t rerun = 0;
      for (std::size_t i = 0; i < samples.size(); ++i) {
        if (samples[i].method != "measured") continue;
        const GeneratedRequest req = generate(seed, static_cast<std::uint64_t>(i));
        const std::string response = transport->send(req.line);
        ++rerun;
        if (tier_of(response) != "cache") {
          rc = fail("warm measured rerun missed the cache tier");
        }
        if (stable_fragment(response) != samples[i].fragment) {
          rc = fail("warm measured rerun fragment differs from first answer");
        }
      }
      const std::uint64_t runs_after = stats_runs_started(*monitor);
      std::printf("verify: warm rerun of %zu measured queries -> %llu simulation(s)\n",
                  rerun, static_cast<unsigned long long>(runs_after - runs_before));
      if (runs_after != runs_before) {
        rc = fail("warm measured rerun executed simulations");
      }
    } else {
      std::printf("verify: no cache configured; skipping warm-rerun invariant\n");
    }

    // Invariant 3: the request-telemetry histograms are well formed. Every
    // cumulative bucket sequence must be non-decreasing in le order with the
    // +Inf bucket equal to the family's _count, and every method the stream
    // exercised must have produced at least one (method, tier) family.
    {
      const std::unique_ptr<Transport> transport = make_transport();
      const auto families = latency_families(*transport);
      std::size_t rows = 0;
      for (const auto& [name, fam] : families) {
        if (fam.buckets.empty()) {
          rc = fail("latency family has no buckets");
          continue;
        }
        std::uint64_t prev = 0;
        for (const auto& [le, cum] : fam.buckets) {
          if (cum < prev) rc = fail("latency histogram buckets not monotone");
          prev = cum;
          ++rows;
        }
        if (!std::isinf(fam.buckets.back().first)) {
          rc = fail("latency histogram missing the +Inf bucket");
        }
        if (!fam.have_count || fam.buckets.back().second != fam.count) {
          rc = fail("latency histogram +Inf bucket disagrees with _count");
        }
      }
      std::set<std::string> methods_seen;
      for (const Sample& s : samples) {
        // The pool's "measured" label is a reporting bucket; on the wire it
        // is a predict, which is what the telemetry keys on.
        methods_seen.insert(s.method == "measured" ? "predict" : s.method);
      }
      for (const std::string& method : methods_seen) {
        bool found = false;
        for (const auto& [name, fam] : families) {
          if (name.rfind("service.latency_s." + method + ".", 0) == 0) found = true;
        }
        if (!found) rc = fail("stream method has no latency-histogram family");
      }
      std::printf("verify: %zu latency families (%zu bucket rows) monotone\n",
                  families.size(), rows);
    }

    // Invariant 4: clean traffic never trips the drift watchdog. The stream's
    // measured queries feed (prediction, simulated actual) pairs into
    // obs::DriftMonitor; against an unperturbed model those errors must stay
    // under the degradation threshold.
    {
      const std::unique_ptr<Transport> transport = make_transport();
      const std::string health = stats_model_health(*transport);
      std::printf("verify: model_health = %s\n", health.c_str());
      if (health != "ok") rc = fail("clean run reports degraded model_health");
    }

    const double bound_ms = cli.get_double("assert-p99-ms");
    if (bound_ms > 0) {
      std::vector<double> model_lats;
      for (const Sample& s : samples) {
        if (s.tier == "model") model_lats.push_back(s.latency_s);
      }
      const double p99_ms = percentile(model_lats, 0.99) * 1e3;
      std::printf("verify: model-tier p99 = %.3fms (bound %.3fms, n=%zu)\n", p99_ms,
                  bound_ms, model_lats.size());
      if (p99_ms > bound_ms) rc = fail("model-tier p99 latency exceeds bound");
    }
    if (rc == 0) std::printf("verify: OK\n");
  } catch (const std::exception& e) {
    rc = fail(e.what());
  }

  if (const std::string path = cli.get("metrics-out"); !path.empty()) {
    const bool is_json = path.size() >= 5 && path.rfind(".json") == path.size() - 5;
    const bool ok =
        is_json ? obs::metrics().write_json(path) : obs::metrics().write_csv(path);
    if (ok) std::printf("[metrics] %s\n", path.c_str());
  }
  if (const std::string path = cli.get("prom-out"); !path.empty()) {
    if (obs::metrics().write_prometheus(path)) std::printf("[prom] %s\n", path.c_str());
  }
  return rc;
}
