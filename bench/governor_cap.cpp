// Closed-loop power capping with the runtime governor — the experiment the
// paper's Fig 1 sketches but never runs. FT and CG execute on the simulated
// SystemG under a sweep of cluster power caps, three ways:
//
//   fixed    — open loop: top gear for the whole run (the pre-DVFS default);
//   governor — closed loop: the online CapPolicy hysteresis controller,
//              fed by the PowerPack streaming sampler and the kernels' live
//              phase markers (gears down reactively during collectives);
//   oracle   — model-optimal open loop: the calibrated iso-energy-efficiency
//              model picks the single best gear for the whole run through the
//              same shared gear-selection helper the governor uses.
//
// Reported per (app, cap): cap-violation time fraction (share of sampled
// virtual time the cluster draws more than the cap), total energy, slowdown
// vs fixed, and achieved EE (model E1 over measured Ep). The governor's
// per-decision trace is exported as CSV for the tightest cap.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/policy.hpp"
#include "analysis/runner.hpp"
#include "analysis/study.hpp"
#include "bench/common.hpp"
#include "governor/governor.hpp"
#include "npb/classes.hpp"
#include "powerpack/profiler.hpp"

using namespace isoee;

namespace {

struct RunMetrics {
  double time_s = 0.0;
  double energy_j = 0.0;
  double violation_frac = 0.0;
  std::uint64_t dvfs_transitions = 0;
};

/// Fraction of sampled virtual time the cluster draws more than `cap_w`.
double violation_fraction(const powerpack::Profiler& profiler,
                          const std::vector<std::vector<sim::Segment>>& traces,
                          double cap_w) {
  powerpack::SampleOptions opts;
  opts.interval_s = 0.0005;
  const auto samples = profiler.sample_job(traces, opts);
  if (samples.empty()) return 0.0;
  std::size_t over = 0;
  for (const auto& s : samples) {
    if (s.total_w() > cap_w) ++over;
  }
  return static_cast<double>(over) / static_cast<double>(samples.size());
}

RunMetrics metrics_of(const sim::RunResult& run, const powerpack::Profiler& profiler,
                      double cap_w) {
  RunMetrics m;
  m.time_s = run.makespan;
  m.energy_j = run.total_energy_j();
  m.violation_frac = violation_fraction(profiler, run.traces, cap_w);
  m.dvfs_transitions = run.counters.dvfs_transitions;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  auto machine = bench::with_noise(sim::system_g());
  machine.power.net_poll_cpu_factor = 1.0;  // busy-polling MPI progress engine
  const powerpack::Profiler profiler(machine);
  const int p = 16;
  const std::vector<double>& gears = machine.cpu.gears_ghz;
  const double top_gear = gears.front();

  bench::heading("Governor: closed-loop power capping vs open loop vs model oracle",
                 "the runtime controller of Fig 1, executed: scale f online to hold a "
                 "cluster power cap");

  struct App {
    const char* name;
    std::unique_ptr<analysis::EnergyStudy> study;
    std::function<sim::RunResult(const analysis::RunOptions&)> run;
    double n;
  };
  std::vector<App> apps;

  {
    auto config = npb::ft_class(npb::ProblemClass::A);
    auto study = std::make_unique<analysis::EnergyStudy>(
        machine, analysis::make_ft_adapter(config), true, bench::exec_config());
    const double ns[] = {32. * 32 * 32, 64. * 64 * 64, 128. * 128 * 128};
    const int calib_ps[] = {2, 4, 8};
    study->calibrate(ns, calib_ps);
    apps.push_back(App{"FT", std::move(study),
                       [machine, config, p](const analysis::RunOptions& o) {
                         return analysis::run_ft(machine, config, p, o);
                       },
                       analysis::ft_problem_size(config)});
  }
  {
    auto config = npb::cg_class(npb::ProblemClass::A);
    auto study = std::make_unique<analysis::EnergyStudy>(
        machine, analysis::make_cg_adapter(config), true, bench::exec_config());
    const double ns[] = {2000, 4000, 8000};
    const int calib_ps[] = {2, 4, 8};
    study->calibrate(ns, calib_ps);
    apps.push_back(App{"CG", std::move(study),
                       [machine, config, p](const analysis::RunOptions& o) {
                         return analysis::run_cg(machine, config, p, o);
                       },
                       analysis::cg_problem_size(config)});
  }

  util::Table table({"app", "cap_W", "mode", "gear", "viol_frac", "energy_J", "time_s",
                     "slowdown", "EE_achieved", "dvfs_switches"});
  bool acceptance_ok = true;

  for (auto& app : apps) {
    // Open-loop baseline at top gear; its average power anchors the cap sweep.
    analysis::RunOptions base_opts;
    base_opts.record_trace = true;
    const auto fixed_run = app.run(base_opts);
    const double base_w = fixed_run.total_energy_j() / fixed_run.makespan;
    const double e1_j = app.study->predict(app.n, 1, top_gear).E1;

    // The achievable band: average draw at the lowest gear vs at the top
    // gear. Caps inside that band are enforceable by DVFS alone, and every
    // one of them is busted by the fixed top-gear run.
    analysis::RunOptions low_opts;
    low_opts.f_ghz = gears.back();
    const double low_w = [&] {
      const auto r = app.run(low_opts);
      return r.total_energy_j() / r.makespan;
    }();
    std::vector<double> caps;
    for (double frac : {0.8, 0.5, 0.2}) {  // loose, medium, tight
      caps.push_back(low_w + frac * (base_w - low_w));
    }

    for (std::size_t ci = 0; ci < caps.size(); ++ci) {
      const double cap = caps[ci];
      const auto fixed_m = metrics_of(fixed_run, profiler, cap);

      // Closed loop: hysteresis cap enforcer with reactive comm gear-down.
      governor::GovernorSpec gspec;
      gspec.window_s = 0.004;
      gspec.decision_interval_s = 0.001;
      gspec.cap_w = cap;
      governor::CapPolicyConfig cap_cfg;
      cap_cfg.gears_ghz = gears;
      cap_cfg.cap_w = cap;
      cap_cfg.gamma = machine.power.gamma;
      governor::Governor gov(machine, gspec, governor::make_cap_policy(cap_cfg));
      analysis::RunOptions gov_opts;
      gov_opts.record_trace = true;
      gov_opts.governor = &gov;
      const auto gov_run = app.run(gov_opts);
      const auto gov_m = metrics_of(gov_run, profiler, cap);
      if (ci + 1 == caps.size()) {  // export the trace for the tightest cap
        const std::string path = std::string(bench::out_dir()) + "/governor_cap_trace_" +
                                 app.name + ".csv";
        if (gov.trace().write_csv(path)) std::printf("[csv] %s\n", path.c_str());
      }

      // Oracle: the calibrated model picks one gear for the whole run via the
      // shared gear-selection helper (p fixed at the partition size).
      const int ps[] = {p};
      const auto choice = analysis::best_under_power_cap(
          app.study->machine_params(), app.study->workload(), app.n, ps, gears, cap);
      analysis::RunOptions oracle_opts;
      oracle_opts.record_trace = true;
      oracle_opts.f_ghz = choice.f_ghz;
      const auto oracle_run = app.run(oracle_opts);
      const auto oracle_m = metrics_of(oracle_run, profiler, cap);

      auto add = [&](const char* mode, const std::string& gear, const RunMetrics& m) {
        table.add_row({app.name, util::num(cap, 0), mode, gear, util::num(m.violation_frac, 3),
                       util::num(m.energy_j, 1), util::num(m.time_s, 4),
                       util::pct(100.0 * (m.time_s / fixed_m.time_s - 1.0)),
                       util::num(e1_j / m.energy_j, 4), util::num(m.dvfs_transitions)});
      };
      add("fixed", util::num(top_gear, 1), fixed_m);
      add("governor", "closed-loop", gov_m);
      add("oracle", util::num(choice.f_ghz, 1) + (choice.feasible ? "" : "*"), oracle_m);

      // "Equal-or-lower" energy up to 0.5% — the FT runs land within rounding
      // of the baseline (busy-poll savings vs idle cost of the slowdown).
      if (!(gov_m.violation_frac < fixed_m.violation_frac &&
            gov_m.energy_j <= 1.005 * fixed_m.energy_j)) {
        acceptance_ok = false;
        std::printf("[acceptance-fail] %s cap=%.1f: viol %.3f vs %.3f, energy %.3f vs %.3f\n",
                    app.name, cap, gov_m.violation_frac, fixed_m.violation_frac,
                    gov_m.energy_j, fixed_m.energy_j);
      }
    }
  }
  bench::emit(table, "governor_cap");

  // The EE-target policy, online: pick the cheapest gear holding EE at >= 97%
  // of the model's top-gear prediction (the iso-EE maintenance use case).
  util::Table ee_table({"app", "EE_target", "gear_chosen", "EE_pred", "EE_achieved",
                        "energy_J", "time_s"});
  for (auto& app : apps) {
    const double ee_top = app.study->predict(app.n, p, top_gear).EE;
    governor::EeTargetConfig ee_cfg;
    ee_cfg.machine = app.study->machine_params();
    ee_cfg.workload = &app.study->workload();
    ee_cfg.n = app.n;
    ee_cfg.p = p;
    ee_cfg.ee_target = 0.97 * ee_top;
    ee_cfg.gears_ghz = gears;
    governor::GovernorSpec gspec;
    governor::Governor gov(machine, gspec, governor::make_ee_target_policy(ee_cfg));
    analysis::RunOptions opts;
    opts.governor = &gov;
    const auto run = app.run(opts);
    const double e1_j = app.study->predict(app.n, 1, top_gear).E1;
    // The gear the policy settled on outside communication phases.
    double gear_chosen = top_gear;
    double ee_pred = ee_top;
    for (const auto& rec : gov.trace().sorted()) {
      if (rec.reason == std::string("ee-target") || rec.reason == std::string("ee-best")) {
        gear_chosen = rec.gear_after;
        ee_pred = rec.predicted_ee;
        break;
      }
    }
    ee_table.add_row({app.name, util::num(ee_cfg.ee_target, 4), util::num(gear_chosen, 1),
                      util::num(ee_pred, 4), util::num(e1_j / run.total_energy_j(), 4),
                      util::num(run.total_energy_j(), 1), util::num(run.makespan, 4)});
  }
  std::printf("\n-- EE-target policy (cheapest gear keeping EE >= target) --\n");
  bench::emit(ee_table, "governor_ee_target");

  std::printf("\nacceptance: closed-loop governor beats fixed gear on cap-violation time "
              "at equal-or-lower energy for every cap: %s\n",
              acceptance_ok ? "yes" : "NO");
  std::printf("\nReading: the fixed top-gear run busts every cap for most of its runtime; "
              "the governor gears down within one control window and holds the cap with "
              "bounded slowdown, matching (and under tight caps beating on energy) the "
              "model-optimal single-gear oracle. '*' marks an oracle choice clamped at "
              "the lowest gear (cap unreachable).\n");
  return acceptance_ok ? 0 : 2;
}
