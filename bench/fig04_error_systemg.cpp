// Figure 4: average energy-prediction error of EP, FT and CG on SystemG over
// p = 1, 2, 4, 8, 16, 32, 64, 128 (InfiniBand interconnect). Machine
// parameters are calibrated with the microbenchmark tools; workload vectors
// are fitted from small calibration runs; every (benchmark, p) point is then
// validated against a full noisy simulation.
//
// Paper result: EP 6.64 %, FT 4.99 %, CG 8.31 % average error — single-digit
// errors with CG the worst (memory-model limitations).
#include <memory>
#include <vector>

#include "analysis/study.hpp"
#include "bench/common.hpp"
#include "npb/classes.hpp"
#include "util/stats.hpp"

using namespace isoee;

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  const auto machine = bench::with_noise(sim::system_g());
  bench::heading("Fig 4: average model error on SystemG (p = 1..128, class B)",
                 "EP 6.64%, FT 4.99%, CG 8.31% in the paper; CG worst");

  struct Case {
    std::string name;
    std::unique_ptr<analysis::BenchmarkAdapter> adapter;
    std::vector<double> calib_ns;
    double validate_n;
  };
  std::vector<Case> cases;
  cases.push_back({"EP", analysis::make_ep_adapter(npb::ep_class(npb::ProblemClass::B)),
                   {1 << 18, 1 << 19, 1 << 20}, static_cast<double>(1 << 24)});
  cases.push_back({"FT", analysis::make_ft_adapter(npb::ft_class(npb::ProblemClass::B)),
                   {32. * 32 * 32, 64. * 64 * 64, 128. * 128 * 128}, 128. * 128 * 128});
  cases.push_back({"CG", analysis::make_cg_adapter(npb::cg_class(npb::ProblemClass::B)),
                   {4000, 8000, 16000}, 75000});

  const int calib_ps[] = {2, 4, 8, 16};
  const int ps[] = {1, 2, 4, 8, 16, 32, 64, 128};

  util::Table per_point({"benchmark", "p", "actual_J", "predicted_J", "error"});
  util::Table summary({"benchmark", "avg_error", "max_error", "paper_avg_error"});
  const char* paper_err[] = {"6.64%", "4.99%", "8.31%"};
  int case_idx = 0;
  for (auto& c : cases) {
    analysis::EnergyStudy study(machine, std::move(c.adapter));
    study.calibrate(c.calib_ns, calib_ps);
    std::vector<double> errors;
    for (int p : ps) {
      const auto v = study.validate(c.validate_n, p);
      errors.push_back(v.error_pct);
      per_point.add_row({c.name, util::num(p), util::num(v.actual_j, 1),
                         util::num(v.predicted_j, 1), util::pct(v.error_pct)});
    }
    const auto s = util::summarize(errors);
    summary.add_row({c.name, util::pct(s.mean), util::pct(s.max), paper_err[case_idx]});
    ++case_idx;
  }
  bench::emit(per_point, "fig04_error_points");
  std::printf("\n-- average error per benchmark --\n");
  bench::emit(summary, "fig04_error_summary");
  return 0;
}
