// Shared scaffolding for the experiment harnesses (one binary per paper
// figure): consistent stdout formatting and CSV export under bench_out/.
#pragma once

#include <cstdio>
#include <string>

#include "analysis/surface.hpp"
#include "sim/machine.hpp"
#include "util/table.hpp"

namespace isoee::bench {

inline const char* out_dir() { return "bench_out"; }

/// Prints a section header.
inline void heading(const std::string& title, const std::string& paper_note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!paper_note.empty()) std::printf("paper: %s\n", paper_note.c_str());
}

/// Prints the table and writes it as CSV under bench_out/<name>.csv.
inline void emit(const util::Table& table, const std::string& name) {
  std::fputs(table.to_string().c_str(), stdout);
  const std::string path = std::string(out_dir()) + "/" + name + ".csv";
  if (table.write_csv(path)) std::printf("[csv] %s\n", path.c_str());
}

/// Prints an EE surface as table + ASCII shade map and writes the CSV.
inline void emit_surface(const analysis::EeSurface& surface, const std::string& name) {
  std::printf("%s\n", surface.title.c_str());
  emit(analysis::surface_table(surface), name);
  std::fputs(analysis::surface_ascii(surface).c_str(), stdout);
}

/// The validation experiments run with noise enabled — the "real hardware".
inline sim::MachineSpec with_noise(sim::MachineSpec machine) {
  machine.noise.enabled = true;
  return machine;
}

}  // namespace isoee::bench
