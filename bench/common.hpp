// Shared scaffolding for the experiment harnesses (one binary per paper
// figure): consistent stdout formatting, CSV export, and hermetic-run flags.
//
// Every bench main starts with
//
//   int main(int argc, char** argv) {
//     if (!isoee::bench::init(argc, argv)) return 1;
//     ...
//   }
//
// which gives all experiment binaries four shared overrides:
//   --csv-dir=DIR    write CSVs under DIR instead of ./bench_out (CI runs
//                    benches hermetically into a temp dir)
//   --seed=N         override the machine presets' deterministic noise seed
//   --jobs=N         host-thread budget for case execution (1 = serial,
//                    0 = hardware_concurrency); results are identical for
//                    every value by the executor's determinism contract
//   --engine-workers=N  host workers per simulation for the fiber engine
//                    (0 = automatic); results are identical for every value
//                    by the scheduler's determinism contract
//   --cache-dir=DIR  content-addressed result cache; a warm rerun replays
//                    cached results and executes zero simulations
//   --trace-out=F    install a process-global obs collector and write the
//                    run's Chrome trace (virtual time) to F at exit
//   --metrics-out=F  write the obs metrics snapshot to F at exit (.json or
//                    .csv, chosen by extension)
//   --flame-out=F    sample the fiber scheduler's host time (SchedProfiler)
//                    and write collapsed stacks to F at exit; inspect with
//                    `trace_stats --flame` or flamegraph.pl
//
// The log level honours the ISOEE_LOG environment variable ("trace" ...
// "off"); bench::init applies it before any subsystem can log.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "analysis/surface.hpp"
#include "exec/executor.hpp"
#include "obs/obs.hpp"
#include "obs/sched_profiler.hpp"
#include "sim/engine.hpp"
#include "sim/machine.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace isoee::bench {

namespace detail {
inline std::string& csv_dir() {
  static std::string dir = "bench_out";
  return dir;
}
inline bool& seed_overridden() {
  static bool set = false;
  return set;
}
inline std::uint64_t& seed_value() {
  static std::uint64_t seed = 0;
  return seed;
}
inline exec::ExecConfig& exec_cfg() {
  static exec::ExecConfig cfg;
  return cfg;
}
inline obs::TraceCollector& trace_collector() {
  static obs::TraceCollector collector;
  return collector;
}
inline std::string& trace_out() {
  static std::string path;
  return path;
}
inline std::string& metrics_out() {
  static std::string path;
  return path;
}
inline std::string& flame_out() {
  static std::string path;
  return path;
}

/// atexit hook: flush the --trace-out / --metrics-out artifacts once the
/// bench main returns (covers std::exit paths in emit() too).
inline void write_observability_artifacts() {
  if (!trace_out().empty()) {
    obs::set_global_sink(nullptr);
    const auto events = trace_collector().sorted();
    if (obs::ChromeTraceWriter::write(events, trace_out(),
                                      {{"source", "isoee-bench"}})) {
      std::printf("[trace] %s (%zu events)\n", trace_out().c_str(), events.size());
    } else {
      ISOEE_ERROR("failed to write --trace-out %s", trace_out().c_str());
    }
  }
  if (!metrics_out().empty()) {
    const std::string& path = metrics_out();
    const bool is_json = path.size() >= 5 && path.rfind(".json") == path.size() - 5;
    const bool ok = is_json ? obs::metrics().write_json(path)
                            : obs::metrics().write_csv(path);
    if (ok) {
      std::printf("[metrics] %s\n", path.c_str());
    } else {
      ISOEE_ERROR("failed to write --metrics-out %s", path.c_str());
    }
  }
  if (!flame_out().empty()) {
    obs::sched_profiler().stop();
    if (obs::sched_profiler().write_collapsed(flame_out())) {
      std::printf("[flame] %s (%llu samples)\n", flame_out().c_str(),
                  static_cast<unsigned long long>(obs::sched_profiler().total_samples()));
    } else {
      ISOEE_ERROR("failed to write --flame-out %s", flame_out().c_str());
    }
  }
}
}  // namespace detail

/// Parses the shared bench flags. Returns false (after printing usage) on
/// --help or a malformed flag; benches should exit then. Output directories
/// are created once, here, so a bad --csv-dir fails before any simulation
/// time is spent rather than after.
inline bool init(int argc, const char* const* argv) {
  if (const char* level = std::getenv("ISOEE_LOG"); level != nullptr && *level != '\0') {
    util::set_log_level(util::parse_log_level(level));
  }

  util::Cli cli("experiment harness (shared flags; figures print to stdout + CSV)");
  // Bench binaries take flags only: a stray positional token is almost always
  // a typo'd flag (`-cache-dir=X`, `cache-dir X`) that would otherwise be
  // silently ignored — e.g. running cold despite naming a cache directory.
  cli.no_positional()
      .flag("csv-dir", detail::csv_dir(), "directory for CSV output")
      .flag("seed", "", "noise-seed override (empty = machine preset default)")
      .flag("jobs", "1", "host-thread budget (1 = serial, 0 = all cores)")
      .flag("engine-workers", "0", "fiber-engine workers per simulation (0 = auto)")
      .flag("cache-dir", "", "result-cache directory (empty = caching off)")
      .flag("cache-max-mb", "0", "result-cache size cap in MiB, oldest entries pruned (0 = unbounded)")
      .flag("trace-out", "", "write a Chrome trace of the run to this file")
      .flag("metrics-out", "", "write the metrics snapshot to this .json/.csv file")
      .flag("flame-out", "",
            "sample the fiber scheduler's host time and write collapsed stacks "
            "(flamegraph.pl format) to this file")
      .flag("flame-interval-us", "500", "scheduler-profiler sampling period, microseconds");
  if (!cli.parse(argc, argv)) return false;
  detail::csv_dir() = cli.get("csv-dir");
  const std::string seed = cli.get("seed");
  if (!seed.empty()) {
    detail::seed_overridden() = true;
    detail::seed_value() = static_cast<std::uint64_t>(cli.get_int("seed"));
  }
  detail::exec_cfg().jobs = static_cast<int>(cli.get_int("jobs"));
  sim::set_default_engine_workers(static_cast<int>(cli.get_int("engine-workers")));
  detail::exec_cfg().cache_dir = cli.get("cache-dir");
  detail::exec_cfg().cache_max_bytes =
      static_cast<std::uint64_t>(cli.get_int("cache-max-mb")) * (1ull << 20);
  detail::trace_out() = cli.get("trace-out");
  detail::metrics_out() = cli.get("metrics-out");
  detail::flame_out() = cli.get("flame-out");
  if (!detail::trace_out().empty()) {
    obs::set_global_sink(&detail::trace_collector());
  }
  if (!detail::flame_out().empty()) {
    obs::SchedProfiler::Options prof;
    prof.interval_us = static_cast<std::uint64_t>(cli.get_int("flame-interval-us"));
    obs::sched_profiler().start(prof);
  }
  if (!detail::trace_out().empty() || !detail::metrics_out().empty() ||
      !detail::flame_out().empty()) {
    std::atexit(detail::write_observability_artifacts);
  }

  std::error_code ec;
  std::filesystem::create_directories(detail::csv_dir(), ec);
  if (ec && !std::filesystem::is_directory(detail::csv_dir())) {
    ISOEE_ERROR("cannot create --csv-dir %s (%s)", detail::csv_dir().c_str(),
                ec.message().c_str());
    return false;
  }
  return true;
}

inline const char* out_dir() { return detail::csv_dir().c_str(); }

/// The shared --jobs / --cache-dir settings, for handing to run_sweep,
/// EnergyStudy, and the surface generators.
inline const exec::ExecConfig& exec_config() { return detail::exec_cfg(); }

/// Prints a section header.
inline void heading(const std::string& title, const std::string& paper_note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!paper_note.empty()) std::printf("paper: %s\n", paper_note.c_str());
}

/// Prints the table and writes it as CSV under <csv-dir>/<name>.csv.
/// A failed CSV write is a broken experiment artifact — fail the whole run
/// loudly instead of printing a table that silently never landed on disk.
inline void emit(const util::Table& table, const std::string& name) {
  std::fputs(table.to_string().c_str(), stdout);
  const std::string path = std::string(out_dir()) + "/" + name + ".csv";
  if (!table.write_csv(path)) {
    ISOEE_ERROR("failed to write %s", path.c_str());
    std::exit(1);
  }
  std::printf("[csv] %s\n", path.c_str());
}

/// Prints an EE surface as table + ASCII shade map and writes the CSV.
inline void emit_surface(const analysis::EeSurface& surface, const std::string& name) {
  std::printf("%s\n", surface.title.c_str());
  emit(analysis::surface_table(surface), name);
  std::fputs(analysis::surface_ascii(surface).c_str(), stdout);
}

/// The validation experiments run with noise enabled — the "real hardware".
/// Honours the --seed override so CI can vary or pin the noise process.
inline sim::MachineSpec with_noise(sim::MachineSpec machine) {
  machine.noise.enabled = true;
  if (detail::seed_overridden()) machine.noise.seed = detail::seed_value();
  return machine;
}

}  // namespace isoee::bench
