// Shared scaffolding for the experiment harnesses (one binary per paper
// figure): consistent stdout formatting, CSV export, and hermetic-run flags.
//
// Every bench main starts with
//
//   int main(int argc, char** argv) {
//     if (!isoee::bench::init(argc, argv)) return 1;
//     ...
//   }
//
// which gives all experiment binaries four shared overrides:
//   --csv-dir=DIR    write CSVs under DIR instead of ./bench_out (CI runs
//                    benches hermetically into a temp dir)
//   --seed=N         override the machine presets' deterministic noise seed
//   --jobs=N         host-thread budget for case execution (1 = serial,
//                    0 = hardware_concurrency); results are identical for
//                    every value by the executor's determinism contract
//   --cache-dir=DIR  content-addressed result cache; a warm rerun replays
//                    cached results and executes zero simulations
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "analysis/surface.hpp"
#include "exec/executor.hpp"
#include "sim/machine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace isoee::bench {

namespace detail {
inline std::string& csv_dir() {
  static std::string dir = "bench_out";
  return dir;
}
inline bool& seed_overridden() {
  static bool set = false;
  return set;
}
inline std::uint64_t& seed_value() {
  static std::uint64_t seed = 0;
  return seed;
}
inline exec::ExecConfig& exec_cfg() {
  static exec::ExecConfig cfg;
  return cfg;
}
}  // namespace detail

/// Parses the shared bench flags. Returns false (after printing usage) on
/// --help or a malformed flag; benches should exit then. Output directories
/// are created once, here, so a bad --csv-dir fails before any simulation
/// time is spent rather than after.
inline bool init(int argc, const char* const* argv) {
  util::Cli cli("experiment harness (shared flags; figures print to stdout + CSV)");
  cli.flag("csv-dir", detail::csv_dir(), "directory for CSV output")
      .flag("seed", "", "noise-seed override (empty = machine preset default)")
      .flag("jobs", "1", "host-thread budget (1 = serial, 0 = all cores)")
      .flag("cache-dir", "", "result-cache directory (empty = caching off)");
  if (!cli.parse(argc, argv)) return false;
  detail::csv_dir() = cli.get("csv-dir");
  const std::string seed = cli.get("seed");
  if (!seed.empty()) {
    detail::seed_overridden() = true;
    detail::seed_value() = static_cast<std::uint64_t>(cli.get_int("seed"));
  }
  detail::exec_cfg().jobs = static_cast<int>(cli.get_int("jobs"));
  detail::exec_cfg().cache_dir = cli.get("cache-dir");

  std::error_code ec;
  std::filesystem::create_directories(detail::csv_dir(), ec);
  if (ec && !std::filesystem::is_directory(detail::csv_dir())) {
    std::fprintf(stderr, "error: cannot create --csv-dir %s (%s)\n",
                 detail::csv_dir().c_str(), ec.message().c_str());
    return false;
  }
  return true;
}

inline const char* out_dir() { return detail::csv_dir().c_str(); }

/// The shared --jobs / --cache-dir settings, for handing to run_sweep,
/// EnergyStudy, and the surface generators.
inline const exec::ExecConfig& exec_config() { return detail::exec_cfg(); }

/// Prints a section header.
inline void heading(const std::string& title, const std::string& paper_note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!paper_note.empty()) std::printf("paper: %s\n", paper_note.c_str());
}

/// Prints the table and writes it as CSV under <csv-dir>/<name>.csv.
/// A failed CSV write is a broken experiment artifact — fail the whole run
/// loudly instead of printing a table that silently never landed on disk.
inline void emit(const util::Table& table, const std::string& name) {
  std::fputs(table.to_string().c_str(), stdout);
  const std::string path = std::string(out_dir()) + "/" + name + ".csv";
  if (!table.write_csv(path)) {
    std::fprintf(stderr, "error: failed to write %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("[csv] %s\n", path.c_str());
}

/// Prints an EE surface as table + ASCII shade map and writes the CSV.
inline void emit_surface(const analysis::EeSurface& surface, const std::string& name) {
  std::printf("%s\n", surface.title.c_str());
  emit(analysis::surface_table(surface), name);
  std::fputs(analysis::surface_ascii(surface).c_str(), stdout);
}

/// The validation experiments run with noise enabled — the "real hardware".
/// Honours the --seed override so CI can vary or pin the noise process.
inline sim::MachineSpec with_noise(sim::MachineSpec machine) {
  machine.noise.enabled = true;
  if (detail::seed_overridden()) machine.noise.seed = detail::seed_value();
  return machine;
}

}  // namespace isoee::bench
