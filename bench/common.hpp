// Shared scaffolding for the experiment harnesses (one binary per paper
// figure): consistent stdout formatting, CSV export, and hermetic-run flags.
//
// Every bench main starts with
//
//   int main(int argc, char** argv) {
//     if (!isoee::bench::init(argc, argv)) return 1;
//     ...
//   }
//
// which gives all experiment binaries two shared overrides:
//   --csv-dir=DIR   write CSVs under DIR instead of ./bench_out (CI runs
//                   benches hermetically into a temp dir)
//   --seed=N        override the machine presets' deterministic noise seed
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "analysis/surface.hpp"
#include "sim/machine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace isoee::bench {

namespace detail {
inline std::string& csv_dir() {
  static std::string dir = "bench_out";
  return dir;
}
inline bool& seed_overridden() {
  static bool set = false;
  return set;
}
inline std::uint64_t& seed_value() {
  static std::uint64_t seed = 0;
  return seed;
}
}  // namespace detail

/// Parses the shared bench flags. Returns false (after printing usage) on
/// --help or a malformed flag; benches should exit then.
inline bool init(int argc, const char* const* argv) {
  util::Cli cli("experiment harness (shared flags; figures print to stdout + CSV)");
  cli.flag("csv-dir", detail::csv_dir(), "directory for CSV output")
      .flag("seed", "", "noise-seed override (empty = machine preset default)");
  if (!cli.parse(argc, argv)) return false;
  detail::csv_dir() = cli.get("csv-dir");
  const std::string seed = cli.get("seed");
  if (!seed.empty()) {
    detail::seed_overridden() = true;
    detail::seed_value() = static_cast<std::uint64_t>(cli.get_int("seed"));
  }
  return true;
}

inline const char* out_dir() { return detail::csv_dir().c_str(); }

/// Prints a section header.
inline void heading(const std::string& title, const std::string& paper_note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!paper_note.empty()) std::printf("paper: %s\n", paper_note.c_str());
}

/// Prints the table and writes it as CSV under <csv-dir>/<name>.csv.
inline void emit(const util::Table& table, const std::string& name) {
  std::fputs(table.to_string().c_str(), stdout);
  const std::string path = std::string(out_dir()) + "/" + name + ".csv";
  if (table.write_csv(path)) std::printf("[csv] %s\n", path.c_str());
}

/// Prints an EE surface as table + ASCII shade map and writes the CSV.
inline void emit_surface(const analysis::EeSurface& surface, const std::string& name) {
  std::printf("%s\n", surface.title.c_str());
  emit(analysis::surface_table(surface), name);
  std::fputs(analysis::surface_ascii(surface).c_str(), stdout);
}

/// The validation experiments run with noise enabled — the "real hardware".
/// Honours the --seed override so CI can vary or pin the noise process.
inline sim::MachineSpec with_noise(sim::MachineSpec machine) {
  machine.noise.enabled = true;
  if (detail::seed_overridden()) machine.noise.seed = detail::seed_value();
  return machine;
}

}  // namespace isoee::bench
