// Baseline comparison: iso-energy-efficiency vs the two prior metrics the
// paper positions itself against (Section II):
//
//   * Grama et al. performance isoefficiency (performance-only),
//   * Ge & Cameron power-aware speedup (energy-aware but coarse).
//
// The sweep shows where the metrics disagree: performance efficiency misses
// energy overheads that EE captures (idle energy during communication), and
// power-aware speedup orders DVFS gears without exposing the component-level
// cause. The iso-problem-size columns contrast "n needed to hold performance
// efficiency" with "n needed to hold EE".
#include "analysis/baselines.hpp"
#include "analysis/study.hpp"
#include "bench/common.hpp"
#include "model/isocontour.hpp"
#include "npb/classes.hpp"

using namespace isoee;

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  const auto machine = bench::with_noise(sim::system_g());
  bench::heading("Baseline comparison: perf isoefficiency / power-aware speedup / EE",
                 "Section II positioning of the iso-energy-efficiency model");

  analysis::EnergyStudy study(machine,
                              analysis::make_cg_adapter(npb::cg_class(npb::ProblemClass::B)));
  const double ns[] = {4000, 8000, 16000};
  const int calib_ps[] = {2, 4, 8};
  study.calibrate(ns, calib_ps);

  const double n = 75000;
  const int ps[] = {1, 2, 4, 8, 16, 32, 64, 128};
  const auto rows = analysis::baseline_sweep(study.machine_params(), study.workload(), n,
                                             ps, 2.8);
  util::Table table({"p", "perf_efficiency", "power_aware_speedup", "iso_energy_efficiency"});
  for (const auto& row : rows) {
    table.add_row({util::num(row.p), util::num(row.perf_eff, 4),
                   util::num(row.pa_speedup, 2), util::num(row.ee, 4)});
  }
  bench::emit(table, "baseline_sweep");

  // Classic speedup laws at the model's effective serial fraction: the
  // Section II.B lineage (Amdahl -> Gustafson -> Sun-Ni) next to the
  // model's own speedup.
  std::printf("\n-- classic speedup laws at the model's effective serial fraction --\n");
  util::Table laws({"p", "eff_serial_frac", "amdahl", "gustafson", "sun_ni_k0.5",
                    "model_speedup"});
  for (int p : {4, 16, 64, 128}) {
    const double s_eff =
        analysis::effective_serial_fraction(study.machine_params(), study.workload(), n, p);
    model::IsoEnergyModel m(study.machine_params());
    laws.add_row({util::num(p), util::num(s_eff, 4),
                  util::num(analysis::amdahl_speedup(s_eff, p), 2),
                  util::num(analysis::gustafson_speedup(s_eff, p), 2),
                  util::num(analysis::sun_ni_speedup(s_eff, p, 0.5), 2),
                  util::num(m.predict_performance(study.workload().at(n, p)).speedup, 2)});
  }
  bench::emit(laws, "baseline_speedup_laws");

  std::printf("\n-- problem size needed to hold each metric at 0.70 (CG) --\n");
  util::Table contour({"p", "n_for_perf_eff_0.70", "n_for_EE_0.70"});
  for (int p : {8, 16, 32, 64}) {
    const double n_perf = analysis::isoefficiency_problem_size(
        study.machine_params(), study.workload(), p, 0.70, 1e3, 1e10);
    const double n_ee = model::required_problem_size(study.machine_params(),
                                                     study.workload(), p, 2.8, 0.70, 1e3, 1e10);
    auto fmt = [](double v) { return v > 0 ? util::sci(v, 2) : std::string("unreachable"); };
    contour.add_row({util::num(p), fmt(n_perf), fmt(n_ee)});
  }
  bench::emit(contour, "baseline_contours");
  std::printf(
      "\nReading: at a fixed frequency the two efficiency notions track each other\n"
      "closely (the same overheads inflate both time and energy), so their\n"
      "iso-contours nearly coincide — and CG's strong-scaling overhead floor makes\n"
      "both unreachable past a point regardless of n. What performance\n"
      "isoefficiency cannot express at all is the frequency axis and the\n"
      "component-level cause of the loss; the EE model adds exactly that\n"
      "(see fig09's DVFS-direction table and the Eq 19 decomposition).\n");
  return 0;
}
