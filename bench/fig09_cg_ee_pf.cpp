// Figure 9: CG iso-energy-efficiency surface over (p, f) at the paper's
// problem size n = 75000 (strong scaling).
//
// Paper finding: EE declines with p; in contrast to EP/FT, energy efficiency
// *increases* with CPU frequency — in this strong-scaling case users can
// scale frequency up with DVFS to achieve better energy efficiency (both E_o
// and E_1 rise with f, but E_1 rises faster).
#include "analysis/study.hpp"
#include "bench/common.hpp"
#include "npb/classes.hpp"
#include "model/isocontour.hpp"

using namespace isoee;

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  const auto machine = bench::with_noise(sim::system_g());
  bench::heading("Fig 9: CG EE(p, f), n = 75000",
                 "EE falls with p but rises with f (DVFS up helps CG)");

  analysis::EnergyStudy study(machine,
                              analysis::make_cg_adapter(npb::cg_class(npb::ProblemClass::B)));
  const double ns_calib[] = {4000, 8000, 16000};
  const int calib_ps[] = {2, 4, 8, 16};
  study.calibrate(ns_calib, calib_ps);

  const double n = 75000;
  const int ps[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  const double fs[] = {1.6, 1.8, 2.0, 2.2, 2.4, 2.6, 2.8};
  const auto surface = analysis::ee_surface_pf(study.machine_params(), study.workload(), n,
                                               ps, fs);
  bench::emit_surface(surface, "fig09_cg_ee_pf");

  // The DVFS-direction check the paper highlights: per p, does the highest
  // gear maximise EE?
  util::Table dir({"p", "best_f_for_EE", "EE_at_1.6", "EE_at_2.8", "delta"});
  for (int p : {8, 16, 32, 64, 128}) {
    const double gears[] = {2.8, 2.4, 2.0, 1.6};
    const double best = model::best_frequency_for_ee(study.machine_params(),
                                                     study.workload(), n, p, gears);
    const double lo = model::ee_at(study.machine_params(), study.workload(), n, p, 1.6);
    const double hi = model::ee_at(study.machine_params(), study.workload(), n, p, 2.8);
    dir.add_row({util::num(p), util::num(best, 1), util::num(lo, 4), util::num(hi, 4),
                 util::num(hi - lo, 4)});
  }
  std::printf("\n-- DVFS direction (paper: higher f -> higher EE for CG) --\n");
  bench::emit(dir, "fig09_dvfs_direction");
  return 0;
}
