// Engine throughput harness (ISSUE 7): BENCH-tracks the rank-scale engine
// rearchitecture. Measures simulated rank-seconds per host second and engine
// events per second for representative workloads at p up to 4096, on both the
// fiber scheduler (default backend) and the legacy thread-per-rank reference
// engine, and reports the fiber/thread speedup.
//
// Emits the usual table + CSV (engine_throughput.csv) and, for CI artifact
// upload, a JSON summary (engine_throughput.json in --csv-dir) with the raw
// measurements and derived speedups. The acceptance bar is a >=10x
// rank-seconds/sec win over the thread baseline at p >= 1024 on the
// scheduler-bound workloads (token_ring, spawn-dominated sweeps) — the costs
// the rearchitecture targets. FT is reported too but is numerics-bound: most
// of its wall clock is host FFT math both backends execute identically.
//
// The thread baseline is capped at p=1024 (spawning 4096 OS threads to lose
// to the fibers proves nothing and dominates the bench's wall-clock); fiber
// rows extend to p=4096, the scale the ISSUE names. Every workload also
// cross-checks fiber-vs-thread RunResult equality at small p: the backends
// must be bit-identical, only their host cost may differ.
#include <cinttypes>
#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "npb/ft.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "smpi/comm.hpp"

using namespace isoee;

namespace {

sim::MachineSpec big_machine() {
  // The paper's SystemG tops out at 2600 cores; the point of the fiber engine
  // is to go past real testbeds, so the throughput rig is a scaled-up
  // SystemG-class cluster: 1024 nodes x 8 cores = 8192 core slots.
  auto m = sim::system_g();
  m.name = "system_g_8k";
  m.nodes = 1024;
  m.noise.enabled = false;
  return m;
}

struct Measurement {
  double wall_s = 0.0;
  double rank_seconds = 0.0;     // makespan * p (simulated rank-seconds)
  std::uint64_t events = 0;      // engine.events_processed delta
  double makespan = 0.0;
  double energy_j = 0.0;

  double rank_s_per_s() const { return wall_s > 0.0 ? rank_seconds / wall_s : 0.0; }
  double events_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
  }
};

Measurement run_case(const sim::MachineSpec& machine, sim::EngineBackend backend,
                     int p, const std::function<void(sim::RankCtx&)>& body,
                     int repeats = 1) {
  obs::Counter& events = obs::metrics().counter("engine.events_processed");
  sim::EngineOptions opts;
  opts.backend = backend;
  const std::uint64_t ev0 = events.value();
  Measurement m;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < repeats; ++i) {
    // A fresh Engine per repeat, like exec::run_batch executes a sweep: the
    // per-job setup cost (thread spawns vs fiber stacks) is part of what the
    // backends are being compared on.
    sim::Engine engine(machine, opts);
    const sim::RunResult result = engine.run(p, body);
    m.makespan = result.makespan;
    m.energy_j = result.total_energy_j();
    m.rank_seconds += result.makespan * static_cast<double>(p);
  }
  m.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  m.events = events.value() - ev0;
  return m;
}

// --- workloads --------------------------------------------------------------

/// Ring pt2pt: the scheduler stress case — every primitive is a message and
/// every receive is a potential fiber switch.
std::function<void(sim::RankCtx&)> ring_body(int p, int iters) {
  return [p, iters](sim::RankCtx& ctx) {
    const int next = (ctx.rank() + 1) % p;
    const int prev = (ctx.rank() + p - 1) % p;
    double token[1] = {static_cast<double>(ctx.rank())};
    for (int i = 0; i < iters; ++i) {
      ctx.compute(2000);
      ctx.send(next, /*tag=*/i % 16, std::span<const double>(token));
      ctx.recv(prev, /*tag=*/i % 16, std::span<double>(token));
    }
  };
}

/// Serial token ring: the latency-bound extreme — exactly one rank is ever
/// runnable, every receive blocks, and each hop is one scheduler hand-off.
/// This is the pattern the thread engine pays a futex wakeup plus an OS
/// context switch for and the fiber engine pays a user-space switch for, so
/// it isolates the cost the rearchitecture removes.
std::function<void(sim::RankCtx&)> token_ring_body(int p, int laps) {
  return [p, laps](sim::RankCtx& ctx) {
    const int next = (ctx.rank() + 1) % p;
    const int prev = (ctx.rank() + p - 1) % p;
    double token[1] = {0.0};
    for (int lap = 0; lap < laps; ++lap) {
      if (ctx.rank() == 0) {
        ctx.send(next, lap % 16, std::span<const double>(token));
        ctx.recv(prev, lap % 16, std::span<double>(token));
      } else {
        ctx.recv(prev, lap % 16, std::span<double>(token));
        ctx.send(next, lap % 16, std::span<const double>(token));
      }
    }
  };
}

/// Allreduce: log2(p)-structured collective traffic through smpi.
std::function<void(sim::RankCtx&)> allreduce_body(int iters) {
  return [iters](sim::RankCtx& ctx) {
    smpi::Comm comm(ctx);
    std::vector<double> in(64, 1.0), out(64);
    for (int i = 0; i < iters; ++i) {
      comm.allreduce_sum(std::span<const double>(in), std::span<double>(out));
      ctx.compute(4000);
    }
  };
}

/// FT: the real NPB kernel (actual FFT numerics + transpose all-to-alls).
/// Bruck all-to-all keeps the transpose at log2(p) steps so p=4096 stays in
/// single-digit seconds — the pairwise default would be p-1 steps of the
/// paper's model, which is the right *model* but an O(p^2) message count.
std::function<void(sim::RankCtx&)> ft_body(int p) {
  npb::FtConfig cfg;
  cfg.nx = std::max(64, p);
  cfg.ny = 1;  // thinnest legal grid: keeps the host FFT math from drowning
               // the scheduling cost this bench is tracking
  cfg.nz = std::max(64, p);
  cfg.iters = 2;
  cfg.collectives.alltoall = smpi::AlltoallAlgo::kBruck;
  return [cfg](sim::RankCtx& ctx) { (void)npb::ft_rank(ctx, cfg); };
}

struct Row {
  std::string workload;
  int p = 0;
  std::string backend;
  Measurement m;
  double speedup = 0.0;  // fiber rank_s_per_s / thread rank_s_per_s (same case)
};

}  // namespace

int main(int argc, char** argv) {
  if (!isoee::bench::init(argc, argv)) return 1;
  const auto machine = big_machine();

  bench::heading("engine throughput: fibers vs thread-per-rank",
                 "ISSUE 7 rearchitecture; >=10x rank-seconds/sec at p>=1024");

  // Cross-backend equality first: same workload, both backends, results must
  // match exactly. This is the differential test that keeps the legacy engine
  // honest as a reference implementation.
  {
    const auto fib = run_case(machine, sim::EngineBackend::kFibers, 64, ring_body(64, 50));
    const auto thr = run_case(machine, sim::EngineBackend::kThreads, 64, ring_body(64, 50));
    if (fib.makespan != thr.makespan || fib.energy_j != thr.energy_j) {
      std::fprintf(stderr,
                   "FAIL: fiber/thread backends disagree at p=64 "
                   "(makespan %.17g vs %.17g, energy %.17g vs %.17g)\n",
                   fib.makespan, thr.makespan, fib.energy_j, thr.energy_j);
      return 1;
    }
    std::printf("backend cross-check: fiber == threads at p=64 (makespan %.6g s)\n\n",
                fib.makespan);
  }

  struct CaseSpec {
    std::string workload;
    int p;
    bool thread_baseline;  // also measure the legacy engine at this p
    int repeats;
    std::function<void(sim::RankCtx&)> body;
  };
  std::vector<CaseSpec> cases;
  cases.push_back({"ring", 256, true, 1, ring_body(256, 100)});
  cases.push_back({"ring", 1024, true, 1, ring_body(1024, 100)});
  cases.push_back({"ring", 4096, false, 1, ring_body(4096, 50)});
  cases.push_back({"token_ring", 1024, true, 1, token_ring_body(1024, 20)});
  cases.push_back({"allreduce", 1024, true, 1, allreduce_body(20)});
  // The repo's dominant load: sweeps of many short jobs (fig05 runs hundreds
  // of cases) — per-job engine setup is the thread backend's worst cost.
  cases.push_back({"sweep20", 1024, true, 20, allreduce_body(2)});
  // Setup-bound extreme: near-empty bodies isolate engine construction and
  // teardown (1024 OS thread spawns/joins per job vs 1024 fiber stacks).
  cases.push_back({"spawn20", 1024, true, 20,
                   [](sim::RankCtx& ctx) { ctx.compute(500); }});
  cases.push_back({"ft", 1024, true, 1, ft_body(1024)});
  cases.push_back({"ft", 4096, false, 1, ft_body(4096)});

  std::vector<Row> rows;
  for (const auto& c : cases) {
    Row fib{c.workload, c.p, "fibers",
            run_case(machine, sim::EngineBackend::kFibers, c.p, c.body, c.repeats), 0.0};
    if (c.thread_baseline) {
      Row thr{c.workload, c.p, "threads",
              run_case(machine, sim::EngineBackend::kThreads, c.p, c.body, c.repeats), 0.0};
      if (thr.m.rank_s_per_s() > 0.0) fib.speedup = fib.m.rank_s_per_s() / thr.m.rank_s_per_s();
      rows.push_back(fib);
      rows.push_back(thr);
    } else {
      rows.push_back(fib);
    }
  }

  util::Table table({"workload", "p", "backend", "wall_s", "rank_s_per_s",
                     "events_per_s", "events", "speedup_vs_threads"});
  for (const auto& r : rows) {
    table.add_row({r.workload, util::num(r.p), r.backend, util::num(r.m.wall_s, 4),
                   util::sci(r.m.rank_s_per_s(), 3), util::sci(r.m.events_per_s(), 3),
                   util::num(static_cast<long long>(r.m.events)),
                   r.speedup > 0.0 ? util::num(r.speedup, 2) : "-"});
  }
  bench::emit(table, "engine_throughput");

  // JSON artifact for CI upload: raw measurements + the derived speedups.
  const std::string json_path = std::string(bench::out_dir()) + "/engine_throughput.json";
  if (std::FILE* f = std::fopen(json_path.c_str(), "w"); f != nullptr) {
    std::fprintf(f, "{\n  \"machine\": \"%s\",\n  \"rows\": [\n", machine.name.c_str());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"workload\": \"%s\", \"p\": %d, \"backend\": \"%s\", "
                   "\"wall_s\": %.6f, \"rank_s_per_s\": %.6g, \"events_per_s\": %.6g, "
                   "\"events\": %" PRIu64 ", \"speedup_vs_threads\": %.4g}%s\n",
                   r.workload.c_str(), r.p, r.backend.c_str(), r.m.wall_s,
                   r.m.rank_s_per_s(), r.m.events_per_s(), r.m.events, r.speedup,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("[json] %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }

  // Summary: the rearchitecture's headline claim, checked where a baseline
  // ran. The peak is the scheduler-bound number (token_ring / spawn-heavy
  // sweeps — the costs the fibers remove); the minimum is FT, which is bound
  // by host FFT numerics the engine cannot speed up (Amdahl), reported so the
  // table never overclaims.
  double best = 0.0, worst = 1e300;
  for (const auto& r : rows) {
    if (r.backend == "fibers" && r.p >= 1024 && r.speedup > 0.0) {
      best = std::max(best, r.speedup);
      worst = std::min(worst, r.speedup);
    }
  }
  if (best > 0.0) {
    std::printf("\nfiber speedup at p>=1024: %.2fx scheduler-bound peak, "
                "%.2fx minimum (numerics-bound ft)\n", best, worst);
  }
  return 0;
}
