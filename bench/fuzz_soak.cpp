// Long-running property soak over the src/check harness, for nightly CI.
//
// Generates --cases random configs from --seed and runs the full differential
// + metamorphic oracle on each (the tier-1 `ctest -R check_sweep` runs the
// same pipeline, bounded at 200 configs). Every failure is minimized by the
// greedy shrinker; the shrunk repro strings are printed, written to
// <csv-dir>/fuzz_soak_failures.csv (CI uploads it as an artifact), and the
// process exits nonzero so the job fails loudly.
//
// Replay a failure locally with:
//
//   build/bench/fuzz_soak --repro='op=allgather,machine=systemg,topo=flat,...'
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <string>

#include "check/check.hpp"
#include "check/config.hpp"
#include "check/oracle.hpp"
#include "check/shrink.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace isoee;

int replay(const std::string& text) {
  check::CheckConfig cfg;
  try {
    cfg = check::CheckConfig::from_repro(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad --repro string: %s\n", e.what());
    return 2;
  }
  std::printf("replaying %s\n", cfg.repro().c_str());
  if (const auto failure = check::check_case(cfg)) {
    std::printf("FAIL: %s\n", failure->c_str());
    return 1;
  }
  std::printf("OK: every property held\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("randomized property soak over src/check (nightly CI driver)");
  cli.no_positional()
      .flag("seed", "1", "sweep seed (CI passes a date-derived value)")
      .flag("cases", "2000", "number of generated configs to check")
      .flag("repro", "", "replay one repro string instead of sweeping")
      .flag("shrink-budget", "200", "oracle runs spent minimizing each failure")
      .flag("csv-dir", "bench_out", "directory for the failure-artifact CSV")
      .flag("jobs", "1", "host-thread budget (1 = serial, 0 = all cores)")
      .flag("cache-dir", "", "result-cache directory (empty = caching off)")
      .flag("budget-seconds", "0",
            "wall-clock budget; 0 = run exactly --cases, otherwise run "
            "--chunk-sized sweeps until the budget is spent")
      .flag("chunk", "200", "cases per chunk under --budget-seconds");
  if (!cli.parse(argc, argv)) return 1;

  const std::string repro = cli.get("repro");
  if (!repro.empty()) return replay(repro);

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const int cases = static_cast<int>(cli.get_int("cases"));
  check::SweepOptions opts;
  opts.shrink_budget = static_cast<int>(cli.get_int("shrink-budget"));
  opts.exec.jobs = static_cast<int>(cli.get_int("jobs"));
  opts.exec.cache_dir = cli.get("cache-dir");

  const long long budget_s = cli.get_int("budget-seconds");
  check::SweepStats stats;
  if (budget_s > 0) {
    // Wall-clock-budgeted mode: sweep consecutive chunks of the same seeded
    // case sequence until the budget runs out. Chunk boundaries only affect
    // how much gets covered, never what any covered case produces.
    const int chunk = static_cast<int>(cli.get_int("chunk"));
    std::printf("fuzz_soak: %llds budget, %d-case chunks from seed %llu (jobs=%d)\n",
                budget_s, chunk, static_cast<unsigned long long>(seed), opts.exec.jobs);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(budget_s);
    while (std::chrono::steady_clock::now() < deadline) {
      check::SweepStats chunk_stats = check::run_sweep(seed, chunk, opts);
      stats.merge(chunk_stats);
      opts.start += chunk;
      if (!chunk_stats.ok()) break;  // stop soaking, report what failed
    }
  } else {
    std::printf("fuzz_soak: %d cases from seed %llu (jobs=%d)\n", cases,
                static_cast<unsigned long long>(seed), opts.exec.jobs);
    stats = check::run_sweep(seed, cases, opts);
  }
  std::printf("%s\n", stats.summary().c_str());
  if (!stats.covered_all_algorithms()) {
    std::printf("note: sweep too small to cover every registered algorithm\n");
  }

  if (stats.ok()) {
    std::printf("OK: every property held on all %d configs\n", stats.cases);
    return 0;
  }

  util::Table table({"original", "shrunk_repro", "failure"});
  for (const auto& f : stats.failures) {
    std::printf("FAIL: %s\n  shrunk repro: %s\n", f.what.c_str(), f.shrunk_repro.c_str());
    table.add_row({f.original.repro(), f.shrunk_repro, f.what});
  }
  const std::string path = cli.get("csv-dir") + "/fuzz_soak_failures.csv";
  if (table.write_csv(path)) std::printf("[csv] %s\n", path.c_str());
  std::printf("%zu failing configs; replay with --repro='...'\n", stats.failures.size());
  return 1;
}
