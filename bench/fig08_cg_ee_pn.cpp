// Figure 8: CG iso-energy-efficiency surface over (p, n) at f = 2.8 GHz.
//
// Paper finding: energy efficiency decreases as p increases; increasing the
// workload size n improves it.
#include "analysis/study.hpp"
#include "bench/common.hpp"
#include "npb/classes.hpp"

using namespace isoee;

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  const auto machine = bench::with_noise(sim::system_g());
  bench::heading("Fig 8: CG EE(p, n), f = 2.8 GHz",
                 "EE falls with p, rises with n");

  analysis::EnergyStudy study(machine,
                              analysis::make_cg_adapter(npb::cg_class(npb::ProblemClass::B)),
                              true, bench::exec_config());
  const double ns_calib[] = {4000, 8000, 16000};
  const int calib_ps[] = {2, 4, 8, 16};
  study.calibrate(ns_calib, calib_ps);

  const int ps[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  const double ns[] = {7000, 14000, 35000, 75000, 150000, 300000};
  const auto surface = analysis::ee_surface_pn(study.machine_params(), study.workload(),
                                               2.8, ps, ns, bench::exec_config());
  bench::emit_surface(surface, "fig08_cg_ee_pn");
  return 0;
}
