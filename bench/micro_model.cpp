// google-benchmark microbenchmarks of the analytical layer: EE evaluation,
// surface generation, and the iso-contour solvers. These quantify the cost
// of using the model interactively (e.g. inside a scheduler's policy loop —
// the paper's Fig 1 "policy" box).
#include <benchmark/benchmark.h>

#include "analysis/surface.hpp"
#include "benchtools/calibrate.hpp"
#include "model/isocontour.hpp"
#include "model/workloads.hpp"

using namespace isoee;

namespace {

const model::MachineParams& params() {
  static const model::MachineParams p = tools::nominal_machine_params(sim::system_g());
  return p;
}

void BM_EeEvaluation(benchmark::State& state) {
  model::FtWorkload ft;
  const auto& m = params();
  int p = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::ee_at(m, ft, 64.0 * 64 * 64, p, 2.8));
    p = p == 1024 ? 2 : p * 2;
  }
}
BENCHMARK(BM_EeEvaluation);

void BM_EnergyPrediction(benchmark::State& state) {
  model::CgWorkload cg;
  model::IsoEnergyModel m(params());
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.predict_energy(cg.at(75000, 64)).Ep);
  }
}
BENCHMARK(BM_EnergyPrediction);

void BM_SurfaceGeneration(benchmark::State& state) {
  model::CgWorkload cg;
  const int ps[] = {1, 2, 4, 8, 16, 32, 64, 128};
  const double fs[] = {1.6, 2.0, 2.4, 2.8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::ee_surface_pf(params(), cg, 75000, ps, fs).ee.size());
  }
}
BENCHMARK(BM_SurfaceGeneration);

void BM_IsoContourSolve(benchmark::State& state) {
  model::FtWorkload ft;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::required_problem_size(params(), ft, 64, 2.8, 0.9, 1e3, 1e12));
  }
}
BENCHMARK(BM_IsoContourSolve);

void BM_MaxProcessorsSolve(benchmark::State& state) {
  model::CgWorkload cg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::max_processors(params(), cg, 75000, 2.8, 0.8, 4096));
  }
}
BENCHMARK(BM_MaxProcessorsSolve);

}  // namespace

BENCHMARK_MAIN();
