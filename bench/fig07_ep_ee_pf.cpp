// Figure 7: EP iso-energy-efficiency surface over (p, f).
//
// Paper finding: EE hardly changes with p or f and stays close to 1 — EP has
// almost no communication, so it is near-ideal iso-energy-efficiency. (And,
// per the paper's Fig 8 discussion, scaling n cannot improve what is already
// ideal: E_o grows as fast as E_1.)
#include "analysis/study.hpp"
#include "bench/common.hpp"
#include "npb/classes.hpp"

using namespace isoee;

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  const auto machine = bench::with_noise(sim::system_g());
  bench::heading("Fig 7: EP EE(p, f), fixed n",
                 "EE ~ 1 everywhere: near-ideal iso-energy-efficiency");

  analysis::EnergyStudy study(machine,
                              analysis::make_ep_adapter(npb::ep_class(npb::ProblemClass::B)));
  const double ns[] = {1 << 18, 1 << 19, 1 << 20};
  const int calib_ps[] = {2, 4, 8, 16};
  study.calibrate(ns, calib_ps);

  const double n = 1 << 24;
  const int ps[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  const double fs[] = {1.6, 1.8, 2.0, 2.2, 2.4, 2.6, 2.8};
  const auto surface = analysis::ee_surface_pf(study.machine_params(), study.workload(), n,
                                               ps, fs);
  bench::emit_surface(surface, "fig07_ep_ee_pf");
  return 0;
}
