// Figure 5: FT iso-energy-efficiency surface over (p, f) at a fixed workload
// size. Machine vector calibrated on SystemG; FT workload fitted from small
// runs; the surface is the analytical EE (Eq 21).
//
// Paper finding: the level of parallelism p dominates — frequency has little
// impact (FT is all-to-all bound); EE falls as p grows.
#include "analysis/study.hpp"
#include "bench/common.hpp"
#include "npb/classes.hpp"

using namespace isoee;

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  const auto machine = bench::with_noise(sim::system_g());
  bench::heading("Fig 5: FT EE(p, f), fixed n",
                 "p dominates; f has little impact; EE drops as p scales");

  analysis::EnergyStudy study(machine,
                              analysis::make_ft_adapter(npb::ft_class(npb::ProblemClass::B)),
                              true, bench::exec_config());
  const double ns[] = {32. * 32 * 32, 64. * 64 * 64, 128. * 128 * 128};
  const int calib_ps[] = {2, 4, 8, 16};
  study.calibrate(ns, calib_ps);

  const double n = 128. * 128 * 128;
  const int ps[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  const double fs[] = {1.6, 1.8, 2.0, 2.2, 2.4, 2.6, 2.8};
  const auto surface = analysis::ee_surface_pf(study.machine_params(), study.workload(), n,
                                               ps, fs, bench::exec_config());
  bench::emit_surface(surface, "fig05_ft_ee_pf");
  return 0;
}
