// Extension experiment: heterogeneous clusters (the paper's stated future
// work). A partition mixes full-speed and DVFS-throttled processor classes;
// the extended model (model/hetero.hpp) predicts job time, energy, and EE
// for any workload split, and is validated against DVFS-heterogeneous
// simulations (per-rank gears).
#include <mutex>

#include "analysis/study.hpp"
#include "bench/common.hpp"
#include "model/hetero.hpp"
#include "npb/classes.hpp"
#include "util/stats.hpp"

using namespace isoee;

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  auto spec = bench::with_noise(sim::system_g());
  bench::heading("Extension: heterogeneous partitions (fast + throttled classes)",
                 "future work in the paper: 'extend the current model to heterogeneous systems'");

  // Calibrate an EP workload (compute-dominated: clean class-speed contrast).
  analysis::EnergyStudy study(spec, analysis::make_ep_adapter(npb::ep_class(npb::ProblemClass::A)));
  const double ns[] = {1 << 17, 1 << 18, 1 << 19};
  const int calib_ps[] = {2, 4};
  study.calibrate(ns, calib_ps);
  const double n = 1 << 22;

  // Two classes: half the ranks at 2.8 GHz, half at 1.6 GHz.
  std::vector<model::ProcessorClass> classes(2);
  classes[0] = {"fast-2.8GHz", study.machine_params().at_frequency(2.8), 4};
  classes[1] = {"slow-1.6GHz", study.machine_params().at_frequency(1.6), 4};

  // Sweep the share given to the fast class; validate each split in the
  // simulator with per-rank gears.
  util::Table table({"fast_share", "pred_time_s", "meas_time_s", "pred_J", "meas_J",
                     "err", "EE"});
  const double total_instr = study.workload().at(n, 8).W_c;
  for (double s0 : {0.30, 0.50, 0.64, 0.80}) {
    const double shares[] = {s0, 1.0 - s0};
    const auto pred = model::predict_hetero(classes, study.workload(), n, shares);

    sim::EngineOptions opts;
    opts.per_rank_ghz = {2.8, 2.8, 2.8, 2.8, 1.6, 1.6, 1.6, 1.6};
    sim::Engine eng(spec, opts);
    auto res = eng.run(8, [&](sim::RankCtx& ctx) {
      const bool fast = ctx.rank() < 4;
      const double share = (fast ? shares[0] : shares[1]) / 4.0;
      ctx.compute(static_cast<std::uint64_t>(total_instr * share));
    });
    table.add_row({util::num(s0, 2), util::num(pred.Tp, 4), util::num(res.makespan, 4),
                   util::num(pred.Ep, 2), util::num(res.total_energy_j(), 2),
                   util::pct(util::ape(res.total_energy_j(), pred.Ep)),
                   util::num(pred.EE, 4)});
  }
  bench::emit(table, "extension_hetero_splits");

  // The model's recommendations.
  const auto balanced = model::balanced_shares(classes, study.workload(), n);
  const double best = model::best_split_for_energy(classes, study.workload(), n);
  std::printf("\nspeed-balanced fast-class share: %.3f\n", balanced[0]);
  std::printf("energy-optimal fast-class share: %.3f\n", best);
  std::printf("(speed ratio 2.8/1.6 = 1.75 -> balanced share 1.75/2.75 = 0.636)\n");

  // EE across mixed partitions for CG: does adding slow nodes ever pay?
  std::printf("\n-- CG: pure-fast vs mixed vs pure-slow partitions of 8 ranks --\n");
  analysis::EnergyStudy cg(spec, analysis::make_cg_adapter(npb::cg_class(npb::ProblemClass::A)));
  const double cg_ns[] = {2000, 4000, 8000};
  cg.calibrate(cg_ns, calib_ps);
  util::Table mix({"partition", "pred_time_s", "pred_J", "EE"});
  for (auto [label, fast, slow] : {std::tuple{"8 fast", 8, 0}, std::tuple{"4+4 mixed", 4, 4},
                                   std::tuple{"8 slow", 0, 8}}) {
    std::vector<model::ProcessorClass> part;
    if (fast > 0) part.push_back({"fast", cg.machine_params().at_frequency(2.8), fast});
    if (slow > 0) part.push_back({"slow", cg.machine_params().at_frequency(1.6), slow});
    const auto pred = model::predict_hetero_balanced(part, cg.workload(), 14000);
    mix.add_row({label, util::num(pred.Tp, 4), util::num(pred.Ep, 1),
                 util::num(pred.EE, 4)});
  }
  bench::emit(mix, "extension_hetero_partitions");
  return 0;
}
