// Figure 2 (a, b): performance efficiency and energy efficiency of FT and CG
// versus processor count at a fixed problem size, *measured* from full
// simulations (PowerPack-style), exactly as the paper's motivating figure:
//
//   perf efficiency   = T1 / (p * Tp)
//   energy efficiency = E1 / Ep
//
// Expected shape: FT scales reasonably well; CG's efficiency falls faster
// (its allgather overhead grows with p). Both energy-efficiency curves sit
// below the performance curves.
#include "analysis/runner.hpp"
#include "bench/common.hpp"
#include "npb/classes.hpp"

using namespace isoee;

namespace {

template <typename Config, typename Runner>
void efficiency_sweep(const sim::MachineSpec& machine, const std::string& name,
                      const Config& config, Runner runner) {
  bench::heading("Fig 2: " + name + " performance & energy efficiency vs CPUs",
                 name == "FT" ? "Fig 2a — FT scales reasonably well"
                              : "Fig 2b — CG efficiency drops off faster");
  const int ps[] = {1, 2, 4, 8, 16, 32};
  double t1 = 0.0, e1 = 0.0;
  util::Table table({"p", "time_s", "energy_J", "perf_efficiency", "energy_efficiency"});
  for (int p : ps) {
    const sim::RunResult run = runner(machine, config, p);
    if (p == 1) {
      t1 = run.makespan;
      e1 = run.total_energy_j();
    }
    const double perf_eff = t1 / (p * run.makespan);
    const double energy_eff = e1 / run.total_energy_j();
    table.add_row({util::num(p), util::num(run.makespan, 4), util::num(run.total_energy_j(), 1),
                   util::num(perf_eff, 4), util::num(energy_eff, 4)});
  }
  bench::emit(table, "fig02_" + name);
}

}  // namespace

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  const auto machine = bench::with_noise(sim::system_g());

  efficiency_sweep(machine, "FT", npb::ft_class(npb::ProblemClass::A),
                   [](const sim::MachineSpec& m, const npb::FtConfig& c, int p) {
                     return analysis::run_ft(m, c, p);
                   });
  efficiency_sweep(machine, "CG", npb::cg_class(npb::ProblemClass::A),
                   [](const sim::MachineSpec& m, const npb::CgConfig& c, int p) {
                     return analysis::run_cg(m, c, p);
                   });
  return 0;
}
