// Figure 6: FT iso-energy-efficiency surface over (p, n) at the base
// frequency f = 2.8 GHz (frequency barely matters for FT, per Fig 5).
//
// Paper finding: p still dominates the variance; increasing the problem size
// n clearly improves energy efficiency.
#include "analysis/study.hpp"
#include "bench/common.hpp"
#include "npb/classes.hpp"

using namespace isoee;

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  const auto machine = bench::with_noise(sim::system_g());
  bench::heading("Fig 6: FT EE(p, n), f = 2.8 GHz",
                 "larger n raises EE; larger p lowers it");

  analysis::EnergyStudy study(machine,
                              analysis::make_ft_adapter(npb::ft_class(npb::ProblemClass::B)));
  const double ns_calib[] = {32. * 32 * 32, 64. * 64 * 64, 128. * 128 * 128};
  const int calib_ps[] = {2, 4, 8, 16};
  study.calibrate(ns_calib, calib_ps);

  const int ps[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  const double ns[] = {32. * 32 * 32,   64. * 64 * 64,    128. * 128 * 128,
                       256. * 256 * 256, 512. * 512 * 512};
  const auto surface = analysis::ee_surface_pn(study.machine_params(), study.workload(),
                                               2.8, ps, ns);
  bench::emit_surface(surface, "fig06_ft_ee_pn");
  return 0;
}
