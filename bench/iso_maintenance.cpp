// The "iso" in iso-energy-efficiency, demonstrated end to end: use the model
// to compute the problem-size contour n(p) that should hold EE at a target,
// then *run* the benchmark at those (n, p) points and measure EE from full
// simulations (E1 / Ep). If the model is right, the measured EE curve is flat
// at the target while the fixed-size curve decays — the paper's scalability
// decision-making loop (Section V.B) closed against ground truth.
#include "analysis/study.hpp"
#include "bench/common.hpp"
#include "model/isocontour.hpp"
#include "npb/classes.hpp"

using namespace isoee;

namespace {

void maintain(analysis::EnergyStudy& study, const std::string& name, double target,
              double fixed_n, double n_lo, double n_hi) {
  std::printf("\n-- %s: hold EE at %.2f by scaling n with p --\n", name.c_str(), target);
  const int ps[] = {2, 4, 8, 16, 32};
  util::Table table({"p", "n_from_contour", "EE_model", "EE_measured(iso)",
                     "EE_measured(fixed n)"});

  // Measured E1 baselines (sequential runs at each contour size and at the
  // fixed size).
  double snapped_fixed = fixed_n;
  const double e1_fixed =
      study.adapter().run(study.machine(), fixed_n, 1, analysis::RunOptions(), &snapped_fixed)
          .total_energy_j();

  for (int p : ps) {
    const double n_iso = model::required_problem_size(
        study.machine_params(), study.workload(), p, study.machine_params().base_ghz,
        target, n_lo, n_hi);
    std::string n_cell = "unreachable", model_cell = "-", iso_cell = "-";
    if (n_iso > 0) {
      double snapped = n_iso;
      const auto run_p =
          study.adapter().run(study.machine(), n_iso, p, analysis::RunOptions(), &snapped);
      const auto run_1 =
          study.adapter().run(study.machine(), snapped, 1, analysis::RunOptions(), &snapped);
      n_cell = util::sci(snapped, 2);
      model_cell = util::num(
          model::ee_at(study.machine_params(), study.workload(), snapped, p,
                       study.machine_params().base_ghz),
          4);
      iso_cell = util::num(run_1.total_energy_j() / run_p.total_energy_j(), 4);
    }
    double snapped = fixed_n;
    const auto run_fixed =
        study.adapter().run(study.machine(), fixed_n, p, analysis::RunOptions(), &snapped);
    table.add_row({util::num(p), n_cell, model_cell, iso_cell,
                   util::num(e1_fixed / run_fixed.total_energy_j(), 4)});
  }
  bench::emit(table, "iso_maintenance_" + name);
}

}  // namespace

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  const auto machine = bench::with_noise(sim::system_g());
  bench::heading("Iso-EE maintenance: scale n along the model's contour n(p)",
                 "the 'iso' claim closed against measured simulations");

  {
    analysis::EnergyStudy ft(machine,
                             analysis::make_ft_adapter(npb::ft_class(npb::ProblemClass::A)));
    const double ns[] = {32. * 32 * 32, 64. * 64 * 64, 128. * 128 * 128};
    const int calib_ps[] = {2, 4, 8};
    ft.calibrate(ns, calib_ps);
    // n_lo = smallest calibrated size: the fitted model is not trusted below
    // its calibration range.
    maintain(ft, "FT", 0.97, 32. * 32 * 32, 32. * 32 * 32, 5e8);
  }
  {
    analysis::EnergyStudy cg(machine,
                             analysis::make_cg_adapter(npb::cg_class(npb::ProblemClass::A)));
    const double ns[] = {2000, 4000, 8000};
    const int calib_ps[] = {2, 4, 8};
    cg.calibrate(ns, calib_ps);
    maintain(cg, "CG", 0.85, 2000, 2000, 4e5);
  }
  std::printf("\nReading: along the contour the measured EE column stays pinned near the\n"
              "target while the fixed-size column decays with p — maintaining iso-energy-\n"
              "efficiency by scaling the workload, the paper's core prescription.\n");
  return 0;
}
