// Ablation: flat vs two-level (hierarchical) network topology.
//
// The paper's models assume a single Hockney pair (t_s, t_w) for every
// message. On a cluster of multi-core nodes, messages between ranks placed on
// the same node cross shared memory instead of the NIC and are much cheaper.
// This harness enables the simulator's two-level network (sim::
// with_intra_node_link) and measures what that locality is worth for the
// communication-bound kernels, comparing the emergent costs against the
// two-level closed forms in model/comm.hpp.
#include <mutex>

#include "analysis/runner.hpp"
#include "bench/common.hpp"
#include "model/comm.hpp"
#include "npb/classes.hpp"
#include "smpi/comm.hpp"

using namespace isoee;

namespace {

struct AlltoallProbe {
  double time = 0.0;        // worst per-rank transpose time
  double intra_share = 0.0; // fraction of messages that stayed on-node
};

AlltoallProbe measured_alltoall(const sim::MachineSpec& machine, int p, std::size_t block) {
  sim::Engine engine(machine);
  AlltoallProbe probe;
  std::mutex mu;
  const auto run = engine.run(p, [&](sim::RankCtx& ctx) {
    smpi::Comm comm(ctx);
    comm.barrier();
    std::vector<double> in(block * static_cast<std::size_t>(p), 1.0), out(in.size());
    const double t0 = ctx.now();
    comm.alltoall(std::span<const double>(in), std::span<double>(out), block);
    std::lock_guard<std::mutex> lock(mu);
    probe.time = std::max(probe.time, ctx.now() - t0);
  });
  if (run.counters.messages_sent > 0) {
    probe.intra_share = static_cast<double>(run.counters.messages_intra_node) /
                        static_cast<double>(run.counters.messages_sent);
  }
  return probe;
}

model::LinkParams intra_link(const sim::MachineSpec& m) {
  return {m.net.intra_t_s, m.net.intra_t_w()};
}
model::LinkParams inter_link(const sim::MachineSpec& m) { return {m.net.t_s, m.net.t_w()}; }

}  // namespace

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  const auto flat = sim::system_g();  // no noise: compare against closed forms
  const auto hier = sim::with_intra_node_link(sim::system_g());
  const int cpn = flat.cores_per_node();

  bench::heading("Ablation: flat vs two-level network topology",
                 "paper assumes one Hockney pair; multi-core nodes have two");
  std::printf("cores per node: %d; intra link t_s %.2e s, bw %.2e B/s "
              "(inter: %.2e s, %.2e B/s)\n",
              cpn, hier.net.intra_t_s, hier.net.intra_bandwidth_Bps, hier.net.t_s,
              hier.net.bandwidth_Bps);

  // Transpose-sized alltoall: measured vs the flat and two-level closed forms.
  util::Table table({"p", "intra_msg_share", "flat_model_s", "flat_sim_s",
                     "hier_model_s", "hier_sim_s", "speedup"});
  const std::size_t block = 1 << 11;  // doubles per destination
  const double X = static_cast<double>(block) * sizeof(double);
  for (int p : {8, 16, 32, 64}) {
    const model::Topology topo{p, cpn};
    const double flat_model =
        model::hockney_alltoall_time(p, X, flat.net.t_s, flat.net.t_w());
    const double hier_model =
        model::hierarchical_alltoall_time(topo, X, intra_link(hier), inter_link(hier));
    const auto flat_probe = measured_alltoall(flat, p, block);
    const auto hier_probe = measured_alltoall(hier, p, block);
    table.add_row({util::num(p), util::num(hier_probe.intra_share, 3),
                   util::sci(flat_model, 3), util::sci(flat_probe.time, 3),
                   util::sci(hier_model, 3), util::sci(hier_probe.time, 3),
                   util::num(flat_probe.time / hier_probe.time, 2)});
  }
  bench::emit(table, "ablation_topology_alltoall");

  // End-to-end effect on the communication-bound kernels (FT transposes,
  // CG halo/allreduce) at fixed p.
  std::printf("\n-- kernel makespan and energy, flat vs two-level (p = 32) --\n");
  util::Table kernels({"kernel", "net", "time_s", "energy_J", "intra_msg_share"});
  const int p = 32;
  for (auto [name, machine] : {std::pair{"flat", bench::with_noise(flat)},
                               std::pair{"hier", bench::with_noise(hier)}}) {
    const auto run = analysis::run_ft(machine, npb::ft_class(npb::ProblemClass::A), p);
    kernels.add_row({"FT-A", name, util::num(run.makespan, 4),
                     util::num(run.total_energy_j(), 1),
                     util::num(static_cast<double>(run.counters.messages_intra_node) /
                                   static_cast<double>(run.counters.messages_sent),
                               3)});
  }
  for (auto [name, machine] : {std::pair{"flat", bench::with_noise(flat)},
                               std::pair{"hier", bench::with_noise(hier)}}) {
    const auto run = analysis::run_cg(machine, npb::cg_class(npb::ProblemClass::A), p);
    kernels.add_row({"CG-A", name, util::num(run.makespan, 4),
                     util::num(run.total_energy_j(), 1),
                     util::num(static_cast<double>(run.counters.messages_intra_node) /
                                   static_cast<double>(run.counters.messages_sent),
                               3)});
  }
  bench::emit(kernels, "ablation_topology_kernels");
  return 0;
}
