// Figure 10: PowerPack-style component power profile of the parallel FFT
// over its execution time. The simulator records per-rank activity segments;
// the virtual sensors sample CPU / memory / NIC / motherboard power, showing
// each component fluctuating above its idle floor as the code moves through
// compute, memory, and communication phases (the paper's MPI_FFT profile).
#include "analysis/runner.hpp"
#include "bench/common.hpp"
#include "npb/classes.hpp"
#include "obs/obs.hpp"
#include "powerpack/phases.hpp"
#include "powerpack/profiler.hpp"

using namespace isoee;

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  auto machine = bench::with_noise(sim::system_g());
  bench::heading("Fig 10: component power profile of the FT (MPI FFT) run",
                 "per-component power fluctuates above the idle floor per phase");

  powerpack::PhaseLog phases;
  obs::TraceCollector trace;
  analysis::RunOptions options;
  options.record_trace = true;
  options.phases = &phases;
  options.trace = &trace;
  const auto config = npb::ft_class(npb::ProblemClass::A);
  const int p = 4;
  const auto run = analysis::run_ft(machine, config, p, options);

  // The run's full event stream (segments, collectives, phases, message
  // flows) as a Chrome trace on virtual time — open in Perfetto, or feed to
  // `trace_stats` for per-phase / per-collective energy attribution.
  const std::string trace_path = std::string(bench::out_dir()) + "/fig10_trace.json";
  if (obs::ChromeTraceWriter::write(trace.sorted(), trace_path,
                                    {{"figure", "fig10"},
                                     {"kernel", "ft"},
                                     {"class", "A"},
                                     {"machine", machine.name}})) {
    std::printf("[trace] %s (%zu events)\n", trace_path.c_str(), trace.size());
  }

  powerpack::Profiler profiler(machine);
  powerpack::SampleOptions sopts;
  sopts.interval_s = run.makespan / 400.0;
  sopts.sensor_noise = true;
  const auto samples = profiler.sample_job(run.traces, sopts);

  // Full-resolution CSV; down-sampled rows on stdout. The per-rank activity
  // Gantt data goes alongside for visual inspection of the phase structure.
  const std::string path = std::string(bench::out_dir()) + "/fig10_power_trace.csv";
  if (powerpack::write_power_csv(samples, path)) {
    std::printf("[csv] %s (%zu samples)\n", path.c_str(), samples.size());
  }
  const std::string seg_path = std::string(bench::out_dir()) + "/fig10_segments.csv";
  if (powerpack::write_segments_csv(run.traces, seg_path)) {
    std::printf("[csv] %s\n", seg_path.c_str());
  }

  util::Table table({"t_s", "cpu_W", "mem_W", "nic_W", "other_W", "total_W"});
  for (std::size_t i = 0; i < samples.size(); i += samples.size() / 20 + 1) {
    const auto& s = samples[i];
    table.add_row({util::num(s.t, 4), util::num(s.cpu_w, 1), util::num(s.mem_w, 1),
                   util::num(s.io_w, 1), util::num(s.other_w, 1),
                   util::num(s.total_w(), 1)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  // Idle floor for reference (the dashed line in the paper's figure).
  std::printf("\nidle floor (p = %d ranks): %.1f W\n", p,
              p * machine.power.system_idle_w());
  std::printf("energy by integration: %.1f J; engine accounting: %.1f J\n",
              powerpack::Profiler::integrate_j(samples, sopts.interval_s),
              run.total_energy_j());

  // Per-phase attribution (which the paper reads off the profile visually).
  std::printf("\n-- per-phase time and energy --\n");
  util::Table phase_table({"phase", "occurrences", "time_s", "energy_J"});
  for (const auto& ph : powerpack::summarize_phases(phases, profiler, run.traces)) {
    phase_table.add_row({ph.name, util::num(ph.occurrences), util::num(ph.time_s, 4),
                         util::num(ph.energy_j, 1)});
  }
  bench::emit(phase_table, "fig10_phases");
  return 0;
}
