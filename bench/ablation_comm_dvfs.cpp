// Extension experiment: communication-phase DVFS — the opportunity the
// paper's related work (Freeh et al., Ge et al.) exploits with runtime
// controllers, reproduced here on the simulated cluster and *bounded in
// advance* by the analytical model (the paper's core pitch: make power
// management quantitative instead of a black art).
//
// Setup: MPI progress engines busy-poll, so a configurable fraction of the
// CPU active power burns during communication waits (net_poll_cpu_factor;
// the paper's Eq 12 assumes 0 and is the library default). The experiment
// runs FT with every collective dropped to a low gear (GearScope) and
// compares measured time/energy against both the full-gear run and the
// model's predicted impact.
#include "analysis/runner.hpp"
#include "analysis/study.hpp"
#include "bench/common.hpp"
#include "npb/classes.hpp"

using namespace isoee;

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  // Dori's 1 Gb/s Ethernet makes FT communication-dominant — the regime the
  // related-work controllers were built for.
  auto machine = bench::with_noise(sim::dori());
  machine.power.net_poll_cpu_factor = 0.7;  // busy-polling MPI progress engine
  bench::heading("Extension: communication-phase DVFS on FT (busy-poll power on)",
                 "related-work controllers (Freeh/Ge) save comm-phase energy; the "
                 "model bounds the effect beforehand");

  const int p = 16;
  auto config = npb::ft_class(npb::ProblemClass::A);

  util::Table table({"comm_gear_GHz", "time_s", "energy_J", "slowdown", "energy_saved"});
  double base_time = 0.0, base_energy = 0.0;
  for (double gear : {0.0, 1.6, 1.2, 1.0}) {  // 0 = no controller
    config.collectives.comm_gear_ghz = gear;
    const auto run = analysis::run_ft(machine, config, p);
    if (gear == 0.0) {
      base_time = run.makespan;
      base_energy = run.total_energy_j();
    }
    table.add_row({gear == 0.0 ? "off" : util::num(gear, 1), util::num(run.makespan, 4),
                   util::num(run.total_energy_j(), 1),
                   util::pct(100.0 * (run.makespan / base_time - 1.0)),
                   util::pct(100.0 * (1.0 - run.total_energy_j() / base_energy))});
  }
  bench::emit(table, "ablation_comm_dvfs");

  // Model-side prediction of the same effect: communication runs at the low
  // gear (f_comm_ghz), computation stays at base.
  analysis::EnergyStudy study(machine, analysis::make_ft_adapter(config));
  const double ns[] = {32. * 32 * 32, 64. * 64 * 64, 128. * 128 * 128};
  const int calib_ps[] = {2, 4, 8};
  study.calibrate(ns, calib_ps);

  const double n = 64. * 64 * 64;
  util::Table model_table({"comm_gear_GHz", "predicted_J", "predicted_saving"});
  auto params = study.machine_params();
  model::IsoEnergyModel base_model(params);
  const double base_pred = base_model.predict_energy(study.workload().at(n, p)).Ep;
  for (double gear : {2.0, 1.6, 1.2, 1.0}) {
    auto at_gear = params;
    at_gear.f_comm_ghz = gear;
    model::IsoEnergyModel m(at_gear);
    const double pred = m.predict_energy(study.workload().at(n, p)).Ep;
    model_table.add_row({util::num(gear, 1), util::num(pred, 1),
                         util::pct(100.0 * (1.0 - pred / base_pred))});
  }
  std::printf("\n-- model-predicted effect (poll power during T_net at the comm gear) --\n");
  bench::emit(model_table, "ablation_comm_dvfs_model");
  std::printf("\nReading: dropping the gear only during collectives saves energy with\n"
              "negligible slowdown (communication time is frequency-independent), and\n"
              "the model predicts the saving before any controller runs — the paper's\n"
              "quantitative-policy vision.\n");
  return 0;
}
