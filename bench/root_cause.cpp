// Root-cause report: *why* is each benchmark losing energy efficiency, and
// which knob recovers it? This is the paper's Section II motivation made
// executable: Eq 16's overhead decomposition attributes E_o to message
// startups, byte transfer, compute overhead, memory overhead, and imbalance;
// a knob-sensitivity column then says what to do about it.
#include <memory>

#include "analysis/study.hpp"
#include "bench/common.hpp"
#include "model/rootcause.hpp"
#include "npb/classes.hpp"

using namespace isoee;

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  const auto machine = bench::with_noise(sim::system_g());
  bench::heading("Root-cause attribution of energy inefficiency (Eq 16 decomposed)",
                 "Section II: 'identify the root cause of energy inefficiency'");

  struct Case {
    std::unique_ptr<analysis::BenchmarkAdapter> adapter;
    std::vector<double> ns;
    double n;
  };
  std::vector<Case> cases;
  cases.push_back({analysis::make_ep_adapter(npb::ep_class(npb::ProblemClass::B)),
                   {1 << 18, 1 << 19, 1 << 20}, static_cast<double>(1 << 24)});
  cases.push_back({analysis::make_ft_adapter(npb::ft_class(npb::ProblemClass::B)),
                   {32. * 32 * 32, 64. * 64 * 64, 128. * 128 * 128}, 128. * 128 * 128});
  cases.push_back({analysis::make_cg_adapter(npb::cg_class(npb::ProblemClass::B)),
                   {4000, 8000, 16000}, 75000});
  cases.push_back({analysis::make_mg_adapter(npb::mg_class(npb::ProblemClass::A)),
                   {32. * 32 * 32, 64. * 64 * 64, 128. * 128 * 128}, 64. * 64 * 64});
  cases.push_back({analysis::make_sweep_adapter(npb::sweep_class(npb::ProblemClass::S)),
                   {128. * 128, 256. * 256, 512. * 512}, 512. * 512});

  const int calib_ps[] = {2, 4, 8};
  const int p = 64;
  const double gears[] = {2.8, 2.4, 2.0, 1.6};

  util::Table table({"app", "EE@p=64", "msg_startup_J", "bytes_J", "comp_ovh_J",
                     "mem_ovh_J", "imbalance_J", "dominant_cause", "best_knob"});
  for (auto& c : cases) {
    analysis::EnergyStudy study(machine, std::move(c.adapter));
    study.calibrate(c.ns, calib_ps);
    const auto& mp = study.machine_params();
    const auto app = study.workload().at(c.n, p);
    const auto b = model::overhead_breakdown(mp, app);
    const auto knobs = model::knob_sensitivity(mp, study.workload(), c.n, p, mp.base_ghz,
                                               gears);
    table.add_row({study.workload().name(),
                   util::num(model::ee_at(mp, study.workload(), c.n, p, mp.base_ghz), 4),
                   util::num(b.message_startup, 2), util::num(b.byte_transfer, 2),
                   util::num(b.compute_overhead, 2), util::num(b.memory_overhead, 2),
                   util::num(b.imbalance, 2), b.dominant(), knobs.best_knob});
  }
  bench::emit(table, "root_cause");
  std::printf(
      "\nReading: EP's (tiny) loss is all message startup; FT splits between the\n"
      "all-to-all (startup + bytes) and fitted memory overhead; CG is dominated by\n"
      "the gathered-vector memory/compute overhead plus transfer volume; SWEEP by\n"
      "pipeline imbalance (T_idle). 'halve-p' being the universal best knob is the\n"
      "model restating Section V.B.5: more parallelism always costs efficiency —\n"
      "the interesting decisions trade it against a deadline or power cap (see\n"
      "examples/power_budget).\n");
  return 0;
}
