// google-benchmark microbenchmarks of the simulator substrate itself:
// how fast the virtual-time engine executes primitive operations, message
// passing, and collectives — the cost of the simulation, not of the
// simulated machine.
//
// Extra mode: `micro_sim --check-obs-overhead [--tolerance=0.02]` asserts the
// obs layer's contract that an *uninstalled* trace sink costs nothing beyond
// one pointer check per primitive: the same workload is timed (min of N)
// before and after a full sink install/trace/uninstall cycle, and the run
// fails if the sink-disabled runtime regressed by more than the tolerance.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "smpi/comm.hpp"

using namespace isoee;

namespace {

sim::MachineSpec machine() {
  auto m = sim::system_g();
  m.noise.enabled = false;
  return m;
}

void BM_EngineComputeOps(benchmark::State& state) {
  const auto spec = machine();
  const auto ops = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine(spec);
    auto res = engine.run(1, [ops](sim::RankCtx& ctx) {
      for (std::uint64_t i = 0; i < ops; ++i) ctx.compute(1000);
    });
    benchmark::DoNotOptimize(res.makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_EngineComputeOps)->Arg(1000)->Arg(10000)->Arg(100000)->MinTime(0.05);

void BM_EngineRunStartup(benchmark::State& state) {
  const auto spec = machine();
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine(spec);
    auto res = engine.run(p, [](sim::RankCtx& ctx) { ctx.compute(1); });
    benchmark::DoNotOptimize(res.makespan);
  }
}
BENCHMARK(BM_EngineRunStartup)->Arg(2)->Arg(8)->Arg(32)->Arg(128)->MinTime(0.05);

void BM_PingPong(benchmark::State& state) {
  const auto spec = machine();
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine(spec);
    engine.run(2, [bytes](sim::RankCtx& ctx) {
      std::vector<std::byte> buf(bytes);
      for (int i = 0; i < 100; ++i) {
        if (ctx.rank() == 0) {
          ctx.send_bytes(1, 0, buf);
          auto back = ctx.recv_bytes(1, 1);
          benchmark::DoNotOptimize(back.size());
        } else {
          auto ping = ctx.recv_bytes(0, 0);
          ctx.send_bytes(0, 1, ping);
        }
      }
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 100 * 2 *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PingPong)->Arg(64)->Arg(4096)->Arg(262144)->MinTime(0.05);

void BM_Allreduce(benchmark::State& state) {
  const auto spec = machine();
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine(spec);
    engine.run(p, [](sim::RankCtx& ctx) {
      smpi::Comm comm(ctx);
      std::vector<double> in(256, 1.0), out(256);
      for (int i = 0; i < 10; ++i) {
        comm.allreduce_sum(std::span<const double>(in), std::span<double>(out));
      }
    });
  }
}
BENCHMARK(BM_Allreduce)->Arg(4)->Arg(16)->Arg(64)->MinTime(0.05);

void BM_AlltoallPairwise(benchmark::State& state) {
  const auto spec = machine();
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine(spec);
    engine.run(p, [p](sim::RankCtx& ctx) {
      smpi::Comm comm(ctx);
      const std::size_t block = 256;
      std::vector<double> in(block * static_cast<std::size_t>(p), 1.0), out(in.size());
      comm.alltoall(std::span<const double>(in), std::span<double>(out), block);
    });
  }
}
BENCHMARK(BM_AlltoallPairwise)->Arg(4)->Arg(16)->Arg(64)->MinTime(0.05);

// Same engine workload with a live TraceCollector attached — the *enabled*
// tracing cost, for comparison against BM_EngineComputeOps.
void BM_EngineComputeOpsTraced(benchmark::State& state) {
  const auto spec = machine();
  const auto ops = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    obs::TraceCollector collector;
    sim::EngineOptions opts;
    opts.trace_sink = &collector;
    sim::Engine engine(spec, opts);
    auto res = engine.run(1, [ops](sim::RankCtx& ctx) {
      for (std::uint64_t i = 0; i < ops; ++i) ctx.compute(1000);
    });
    benchmark::DoNotOptimize(res.makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_EngineComputeOpsTraced)->Arg(1000)->Arg(10000)->MinTime(0.05);

// --- --check-obs-overhead ---------------------------------------------------

/// The timed workload: segment-rate primitives plus messaging, i.e. every
/// instrumentation point the engine owns.
double workload_seconds(const sim::MachineSpec& spec) {
  const auto start = std::chrono::steady_clock::now();
  sim::Engine engine(spec);
  engine.run(2, [](sim::RankCtx& ctx) {
    std::vector<std::byte> buf(256);
    for (int i = 0; i < 2000; ++i) {
      ctx.compute(1000);
      ctx.memory(100);
      if (ctx.rank() == 0) {
        ctx.send_bytes(1, 0, buf);
        (void)ctx.recv_bytes(1, 1);
      } else {
        auto ping = ctx.recv_bytes(0, 0);
        ctx.send_bytes(0, 1, ping);
      }
    }
  });
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

double min_of(int n, const sim::MachineSpec& spec) {
  double best = 1e9;
  for (int i = 0; i < n; ++i) best = std::min(best, workload_seconds(spec));
  return best;
}

int check_obs_overhead(double tolerance) {
  const auto spec = machine();
  constexpr int kRepetitions = 15;

  min_of(3, spec);  // warm up allocators, code, and metric statics
  const double before_s = min_of(kRepetitions, spec);

  // Full tracing cycle: install a global sink, trace a run, uninstall.
  {
    obs::TraceCollector collector;
    obs::set_global_sink(&collector);
    workload_seconds(spec);
    obs::set_global_sink(nullptr);
    std::printf("traced cycle: %zu events collected\n", collector.size());
  }

  const double after_s = min_of(kRepetitions, spec);
  const double regression = after_s / before_s - 1.0;
  std::printf("sink-disabled workload: before %.6f s, after %.6f s, "
              "regression %+.2f%% (tolerance %.2f%%)\n",
              before_s, after_s, regression * 100.0, tolerance * 100.0);
  if (regression > tolerance) {
    std::fprintf(stderr, "FAIL: disabled-sink runtime regressed beyond tolerance\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_overhead = false;
  double tolerance = 0.02;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--check-obs-overhead") check_overhead = true;
    if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance = std::strtod(std::string(arg.substr(12)).c_str(), nullptr);
    }
  }
  if (check_overhead) return check_obs_overhead(tolerance);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
