// google-benchmark microbenchmarks of the simulator substrate itself:
// how fast the virtual-time engine executes primitive operations, message
// passing, and collectives — the cost of the simulation, not of the
// simulated machine.
#include <benchmark/benchmark.h>

#include <span>
#include <vector>

#include "sim/engine.hpp"
#include "smpi/comm.hpp"

using namespace isoee;

namespace {

sim::MachineSpec machine() {
  auto m = sim::system_g();
  m.noise.enabled = false;
  return m;
}

void BM_EngineComputeOps(benchmark::State& state) {
  const auto spec = machine();
  const auto ops = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine(spec);
    auto res = engine.run(1, [ops](sim::RankCtx& ctx) {
      for (std::uint64_t i = 0; i < ops; ++i) ctx.compute(1000);
    });
    benchmark::DoNotOptimize(res.makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_EngineComputeOps)->Arg(1000)->Arg(10000)->Arg(100000)->MinTime(0.05);

void BM_EngineRunStartup(benchmark::State& state) {
  const auto spec = machine();
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine(spec);
    auto res = engine.run(p, [](sim::RankCtx& ctx) { ctx.compute(1); });
    benchmark::DoNotOptimize(res.makespan);
  }
}
BENCHMARK(BM_EngineRunStartup)->Arg(2)->Arg(8)->Arg(32)->Arg(128)->MinTime(0.05);

void BM_PingPong(benchmark::State& state) {
  const auto spec = machine();
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine(spec);
    engine.run(2, [bytes](sim::RankCtx& ctx) {
      std::vector<std::byte> buf(bytes);
      for (int i = 0; i < 100; ++i) {
        if (ctx.rank() == 0) {
          ctx.send_bytes(1, 0, buf);
          auto back = ctx.recv_bytes(1, 1);
          benchmark::DoNotOptimize(back.size());
        } else {
          auto ping = ctx.recv_bytes(0, 0);
          ctx.send_bytes(0, 1, ping);
        }
      }
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 100 * 2 *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PingPong)->Arg(64)->Arg(4096)->Arg(262144)->MinTime(0.05);

void BM_Allreduce(benchmark::State& state) {
  const auto spec = machine();
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine(spec);
    engine.run(p, [](sim::RankCtx& ctx) {
      smpi::Comm comm(ctx);
      std::vector<double> in(256, 1.0), out(256);
      for (int i = 0; i < 10; ++i) {
        comm.allreduce_sum(std::span<const double>(in), std::span<double>(out));
      }
    });
  }
}
BENCHMARK(BM_Allreduce)->Arg(4)->Arg(16)->Arg(64)->MinTime(0.05);

void BM_AlltoallPairwise(benchmark::State& state) {
  const auto spec = machine();
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine(spec);
    engine.run(p, [p](sim::RankCtx& ctx) {
      smpi::Comm comm(ctx);
      const std::size_t block = 256;
      std::vector<double> in(block * static_cast<std::size_t>(p), 1.0), out(in.size());
      comm.alltoall(std::span<const double>(in), std::span<double>(out), block);
    });
  }
}
BENCHMARK(BM_AlltoallPairwise)->Arg(4)->Arg(16)->Arg(64)->MinTime(0.05);

}  // namespace

BENCHMARK_MAIN();
