// Tables 1 & 2 instantiated: the paper's parameter glossaries, filled in with
// this reproduction's *measured* machine-dependent vectors (both clusters,
// via the lat_mem_rd / mpptest / PowerPack-style calibration tools) and the
// *fitted* application-dependent vectors for every kernel at its class-A
// point — the concrete analogue of the vectors the paper lists in Section V.
#include <memory>

#include "analysis/study.hpp"
#include "bench/common.hpp"
#include "npb/classes.hpp"

using namespace isoee;

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  bench::heading("Tables 1 & 2: calibrated machine vectors and fitted application vectors",
                 "the measured/fitted instantiation of the paper's parameter tables");

  // --- Table 1: machine-dependent parameters -------------------------------------
  util::Table t1({"parameter", "SystemG", "Dori", "definition"});
  auto g = tools::calibrate_machine(bench::with_noise(sim::system_g()));
  auto d = tools::calibrate_machine(bench::with_noise(sim::dori()));
  t1.add_row({"t_c = CPI/f (s)", util::sci(g.t_c(), 3), util::sci(d.t_c(), 3),
              "avg time per on-chip instruction"});
  t1.add_row({"CPI", util::num(g.cpi, 3), util::num(d.cpi, 3), "measured cycles/instr"});
  t1.add_row({"t_m (s)", util::sci(g.t_m, 3), util::sci(d.t_m, 3),
              "avg memory access latency (lat_mem_rd)"});
  t1.add_row({"t_s (s)", util::sci(g.t_s, 3), util::sci(d.t_s, 3),
              "message startup (mpptest)"});
  t1.add_row({"t_w (s/B)", util::sci(g.t_w, 3), util::sci(d.t_w, 3),
              "per-byte transmission (mpptest)"});
  t1.add_row({"P_idle-system (W)", util::num(g.p_sys_idle, 2), util::num(d.p_sys_idle, 2),
              "idle floor per processor"});
  t1.add_row({"dP_c (W)", util::num(g.dp_c_base, 2), util::num(d.dp_c_base, 2),
              "CPU active increment at base f"});
  t1.add_row({"dP_m (W)", util::num(g.dp_m, 2), util::num(d.dp_m, 2),
              "memory active increment"});
  t1.add_row({"dP_io (W)", util::num(g.dp_io, 2), util::num(d.dp_io, 2),
              "I/O active increment (Eq 12: ~0)"});
  t1.add_row({"gamma", util::num(g.gamma, 2), util::num(d.gamma, 2),
              "power-frequency exponent (Eq 20)"});
  t1.add_row({"f base (GHz)", util::num(g.base_ghz, 1), util::num(d.base_ghz, 1),
              "nominal frequency"});
  bench::emit(t1, "table1_machine_params");

  // --- Table 2: application-dependent parameters ----------------------------------
  std::printf("\n(application vectors at class-A size, p = 8, on SystemG)\n");
  const auto spec = bench::with_noise(sim::system_g());
  struct Case {
    std::unique_ptr<analysis::BenchmarkAdapter> adapter;
    std::vector<double> ns;
    double n;
  };
  std::vector<Case> cases;
  cases.push_back({analysis::make_ep_adapter(npb::ep_class(npb::ProblemClass::A)),
                   {1 << 17, 1 << 18, 1 << 19}, static_cast<double>(1 << 22)});
  cases.push_back({analysis::make_ft_adapter(npb::ft_class(npb::ProblemClass::A)),
                   {32. * 32 * 32, 64. * 64 * 64, 128. * 128 * 128}, 64. * 64 * 64});
  cases.push_back({analysis::make_cg_adapter(npb::cg_class(npb::ProblemClass::A)),
                   {2000, 4000, 8000}, 14000});
  cases.push_back({analysis::make_is_adapter(npb::is_class(npb::ProblemClass::A)),
                   {1 << 17, 1 << 18, 1 << 19}, static_cast<double>(1 << 22)});
  cases.push_back({analysis::make_mg_adapter(npb::mg_class(npb::ProblemClass::A)),
                   {32. * 32 * 32, 64. * 64 * 64, 128. * 128 * 128}, 64. * 64 * 64});
  cases.push_back({analysis::make_sweep_adapter(npb::sweep_class(npb::ProblemClass::S)),
                   {128. * 128, 256. * 256, 512. * 512}, 512. * 512});

  util::Table t2({"app", "alpha", "W_c", "W_m", "dW_oc", "dW_om", "M", "B", "T_io(s)"});
  const int calib_ps[] = {2, 4, 8};
  for (auto& c : cases) {
    analysis::EnergyStudy study(spec, std::move(c.adapter));
    study.calibrate(c.ns, calib_ps);
    const auto a = study.workload().at(c.n, 8);
    t2.add_row({study.workload().name(), util::num(a.alpha, 3), util::sci(a.W_c, 2),
                util::sci(a.W_m, 2), util::sci(a.dW_oc, 2), util::sci(a.dW_om, 2),
                util::sci(a.M, 2), util::sci(a.B, 2), util::num(a.T_io + a.T_idle, 4)});
  }
  bench::emit(t2, "table2_app_params");
  return 0;
}
