// Ablation: the computational-overlap factor alpha (paper Section VI.F).
//
// The paper argues alpha cannot be ignored (it criticises Ding et al. for
// assuming no overlap). This harness quantifies that: energy-prediction
// error across benchmarks and rank counts with (a) the measured alpha and
// (b) alpha forced to 1 (no-overlap assumption).
#include <memory>
#include <vector>

#include "analysis/study.hpp"
#include "bench/common.hpp"
#include "npb/classes.hpp"
#include "util/stats.hpp"

using namespace isoee;

namespace {

/// Wraps a fitted workload with alpha overridden to 1.
class NoOverlap final : public model::WorkloadModel {
 public:
  explicit NoOverlap(const model::WorkloadModel& inner) : inner_(&inner) {}
  model::AppParams at(double n, int p) const override {
    auto a = inner_->at(n, p);
    a.alpha = 1.0;
    return a;
  }
  std::string name() const override { return inner_->name() + "-noalpha"; }

 private:
  const model::WorkloadModel* inner_;
};

}  // namespace

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  const auto machine = bench::with_noise(sim::system_g());
  bench::heading("Ablation: overlap factor alpha vs alpha = 1",
                 "the paper's Section VI.F: overlap cannot be ignored");

  struct Case {
    std::string name;
    std::unique_ptr<analysis::BenchmarkAdapter> adapter;
    std::vector<double> calib_ns;
    double n;
  };
  std::vector<Case> cases;
  cases.push_back({"FT", analysis::make_ft_adapter(npb::ft_class(npb::ProblemClass::A)),
                   {32. * 32 * 32, 64. * 64 * 64, 128. * 128 * 128}, 64. * 64 * 64});
  cases.push_back({"CG", analysis::make_cg_adapter(npb::cg_class(npb::ProblemClass::A)),
                   {2000, 4000, 8000}, 14000});

  const int calib_ps[] = {2, 4, 8};
  util::Table table({"benchmark", "alpha_measured", "avg_err_with_alpha",
                     "avg_err_alpha_1"});
  for (auto& c : cases) {
    analysis::EnergyStudy study(machine, std::move(c.adapter));
    study.calibrate(c.calib_ns, calib_ps);
    const NoOverlap no_alpha(study.workload());

    std::vector<double> err_with, err_without;
    for (int p : {1, 4, 16, 32}) {
      const auto v = study.validate(c.n, p);
      err_with.push_back(v.error_pct);
      // Re-predict with alpha = 1 against the same measured energy.
      model::IsoEnergyModel m(study.machine_params());
      const double pred = m.predict_energy(no_alpha.at(v.n, p)).Ep;
      err_without.push_back(util::ape(v.actual_j, pred));
    }
    const double alpha = study.workload().at(c.n, 1).alpha;
    table.add_row({c.name, util::num(alpha, 3), util::pct(util::mean(err_with)),
                   util::pct(util::mean(err_without))});
  }
  bench::emit(table, "ablation_overlap");
  std::printf("\nReading: dropping alpha (assuming zero overlap) inflates the error by\n"
              "roughly the amount of hidden memory time — the paper's justification for\n"
              "modelling computational overlap explicitly.\n");
  return 0;
}
