// Extension experiment: the I/O path (T_io, DeltaP_io). The paper's codes
// leave I/O at ~0 and it notes users can plug specific I/O components into
// Eqs 5-9; the CKPT application exercises exactly that. This harness
// validates the model with disks active and shows how checkpoint frequency
// moves the energy bill.
#include "analysis/study.hpp"
#include "bench/common.hpp"
#include "npb/ckpt.hpp"
#include "analysis/runner.hpp"
#include "util/stats.hpp"

using namespace isoee;

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  auto spec = bench::with_noise(sim::system_g());
  spec.power.io_delta_w = 8.0;  // active disk draw per core slot
  bench::heading("Extension: I/O-intensive workload (CKPT) through the T_io path",
                 "the paper's Eq 5-9 I/O terms, exercised instead of left at ~0");

  analysis::EnergyStudy study(spec, analysis::make_ckpt_adapter());
  const double ns[] = {1 << 17, 1 << 18, 1 << 19};
  const int calib_ps[] = {2, 4, 8};
  study.calibrate(ns, calib_ps);

  // Validation across p with I/O active.
  util::Table table({"p", "actual_J", "predicted_J", "error", "io_share_of_T"});
  std::vector<double> errors;
  for (int p : {1, 2, 4, 8, 16, 32}) {
    const auto v = study.validate(1 << 21, p);
    errors.push_back(v.error_pct);
    const auto app = study.workload().at(v.n, p);
    const auto perf = study.predict_performance(v.n, p);
    const double io_share = app.T_io / (app.T_io > 0 ? (perf.Tp * p / app.alpha) : 1.0);
    table.add_row({util::num(p), util::num(v.actual_j, 1), util::num(v.predicted_j, 1),
                   util::pct(v.error_pct), util::pct(100.0 * io_share)});
  }
  bench::emit(table, "extension_io_validation");
  std::printf("mean error with I/O active: %s\n", util::pct(util::mean(errors)).c_str());

  // Checkpoint-period sweep: the durability/energy trade.
  std::printf("\n-- checkpoint period vs energy (measured, p = 8, n = 2^21) --\n");
  util::Table sweep({"ckpt_every", "checkpoints", "time_s", "energy_J", "io_J"});
  for (int every : {2, 5, 10, 20}) {
    npb::CkptConfig cfg;
    cfg.elements = 1 << 21;
    cfg.iterations = 20;
    cfg.ckpt_every = every;
    const auto run = analysis::run_ckpt(spec, cfg, 8);
    sweep.add_row({util::num(every), util::num(20 / every), util::num(run.makespan, 4),
                   util::num(run.total_energy_j(), 1), util::num(run.energy.io, 1)});
  }
  bench::emit(sweep, "extension_io_period");
  std::printf("\nReading: more frequent checkpoints inflate T_io and the idle-floor\n"
              "energy spent waiting on the disk — the model's T_io * (P_idle + dP_io)\n"
              "terms capture the cost before the job runs.\n");
  return 0;
}
