// Figure 3: energy-model validation on the Dori cluster (Ethernet,
// dual-dual-core Opterons). All benchmarks run on 4 processors at the base
// frequency; the table compares actual (full noisy simulation, the
// "PowerPack measurement") against the analytical model's prediction
// (Eq 15 with calibrated machine parameters and fitted workload vectors).
//
// Paper result: model accuracy over 95 % for every benchmark.
#include <memory>
#include <vector>

#include "analysis/study.hpp"
#include "bench/common.hpp"
#include "npb/classes.hpp"

using namespace isoee;

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  const auto machine = bench::with_noise(sim::dori());
  bench::heading("Fig 3: energy model validation on Dori (p = 4)",
                 "actual vs predicted total energy; accuracy > 95% for all codes");

  struct Case {
    std::string name;
    std::unique_ptr<analysis::BenchmarkAdapter> adapter;
    std::vector<double> calib_ns;
    double validate_n;
  };
  std::vector<Case> cases;
  cases.push_back({"EP", analysis::make_ep_adapter(npb::ep_class(npb::ProblemClass::W)),
                   {1 << 17, 1 << 18, 1 << 19}, static_cast<double>(1 << 21)});
  cases.push_back({"FT", analysis::make_ft_adapter(npb::ft_class(npb::ProblemClass::W)),
                   {32. * 32 * 32, 64. * 64 * 64, 128. * 128 * 128}, 64. * 64 * 64});
  cases.push_back({"CG", analysis::make_cg_adapter(npb::cg_class(npb::ProblemClass::W)),
                   {1000, 2000, 4000}, 7000});
  cases.push_back({"IS", analysis::make_is_adapter(npb::is_class(npb::ProblemClass::W)),
                   {1 << 17, 1 << 18, 1 << 19}, static_cast<double>(1 << 21)});
  // MG calibration grids all support the pinned 3-level hierarchy, keeping
  // the fitted halo-communication coefficients consistent across sizes.
  cases.push_back({"MG", analysis::make_mg_adapter(npb::mg_class(npb::ProblemClass::W)),
                   {32. * 32 * 32, 64. * 64 * 64, 128. * 128 * 128}, 64. * 64 * 64});

  const int calib_ps[] = {2, 4};
  util::Table table({"benchmark", "n", "actual_J", "predicted_J", "error", "accuracy"});
  for (auto& c : cases) {
    analysis::EnergyStudy study(machine, std::move(c.adapter));
    study.calibrate(c.calib_ns, calib_ps);
    const auto v = study.validate(c.validate_n, /*p=*/4);
    table.add_row({c.name, util::num(v.n, 0), util::num(v.actual_j, 1),
                   util::num(v.predicted_j, 1), util::pct(v.error_pct),
                   util::pct(100.0 - v.error_pct)});
  }
  bench::emit(table, "fig03_validation_dori");
  return 0;
}
