// Ablation: the power-frequency exponent gamma (paper Eq 20, P ~ f^gamma,
// gamma >= 1, set to 2 on SystemG following Kim et al.).
//
// Sweeps gamma and reports (a) how the predicted EE surface tilts with
// frequency and (b) which DVFS gear minimises predicted energy — showing the
// paper's race-to-idle / scale-down crossover as dynamic power grows.
#include "analysis/study.hpp"
#include "bench/common.hpp"
#include "model/isocontour.hpp"
#include "npb/classes.hpp"

using namespace isoee;

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  const auto machine = bench::with_noise(sim::system_g());
  bench::heading("Ablation: power exponent gamma in DeltaP_c ~ f^gamma",
                 "paper assumes gamma = 2 (Kim et al.); sensitivity check");

  analysis::EnergyStudy study(machine,
                              analysis::make_cg_adapter(npb::cg_class(npb::ProblemClass::A)));
  const double ns[] = {2000, 4000, 8000};
  const int calib_ps[] = {2, 4, 8};
  study.calibrate(ns, calib_ps);

  const double n = 14000;
  const int p = 32;
  const double gears[] = {2.8, 2.4, 2.0, 1.6};

  util::Table table({"gamma", "EE_at_1.6GHz", "EE_at_2.8GHz", "best_gear_for_energy",
                     "Ep_at_best_J"});
  for (double gamma : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) {
    auto params = study.machine_params();
    params.gamma = gamma;
    const double ee_lo = model::ee_at(params, study.workload(), n, p, 1.6);
    const double ee_hi = model::ee_at(params, study.workload(), n, p, 2.8);
    const double best =
        model::best_frequency_for_energy(params, study.workload(), n, p, gears);
    model::IsoEnergyModel m(params.at_frequency(best));
    const double ep = m.predict_energy(study.workload().at(n, p)).Ep;
    table.add_row({util::num(gamma, 1), util::num(ee_lo, 4), util::num(ee_hi, 4),
                   util::num(best, 1), util::num(ep, 1)});
  }
  bench::emit(table, "ablation_gamma");
  std::printf(
      "\nReading: with the calibrated idle floor (~29 W/core) dominating the CPU\n"
      "delta (~12 W), racing to idle wins up to gamma ~ 4; only for steeper\n"
      "power-frequency curves does the energy-optimal gear drop below the top —\n"
      "the crossover the paper's Eq 20 exposes. EE itself tilts toward higher f\n"
      "as gamma falls (cheaper high gears), matching the Fig 9 discussion.\n");
  return 0;
}
