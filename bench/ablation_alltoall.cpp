// Ablation: all-to-all algorithm choice for the FT transpose.
//
// The paper models FT's MPI_Alltoall with the Pairwise-exchange/Hockney
// formula (p-1)(t_s + X t_w). This harness measures the emergent transpose
// cost for three algorithms over the simulated network and compares against
// the closed form, then shows the impact on FT's total energy.
//
// Note: the simulator has no bandwidth contention, so the "naive" algorithm
// (post everything, then drain) is an optimistic lower bound; pairwise
// matches the Hockney model; the store-and-forward ring pays extra hops.
#include <mutex>

#include "analysis/runner.hpp"
#include "bench/common.hpp"
#include "model/comm.hpp"
#include "npb/classes.hpp"
#include "smpi/comm.hpp"

using namespace isoee;

namespace {

double measured_alltoall_time(const sim::MachineSpec& machine, int p, std::size_t block,
                              smpi::AlltoallAlgo algo) {
  sim::Engine engine(machine);
  double worst = 0.0;
  std::mutex mu;
  engine.run(p, [&](sim::RankCtx& ctx) {
    smpi::CollectiveConfig cfg;
    cfg.alltoall = algo;
    smpi::Comm comm(ctx, cfg);
    comm.barrier();
    std::vector<double> in(block * static_cast<std::size_t>(p), 1.0), out(in.size());
    const double t0 = ctx.now();
    comm.alltoall(std::span<const double>(in), std::span<double>(out), block);
    std::lock_guard<std::mutex> lock(mu);
    worst = std::max(worst, ctx.now() - t0);
  });
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  if (!bench::init(argc, argv)) return 1;
  auto machine = sim::system_g();  // no noise: compare against the closed form
  bench::heading("Ablation: all-to-all algorithm vs the Hockney model",
                 "the paper's FT analysis uses pairwise exchange / Hockney");

  util::Table table({"p", "block_KiB", "hockney_s", "pairwise_s", "ring_s", "naive_s",
                     "bruck_s"});
  for (int p : {4, 8, 16, 32, 64}) {
    const std::size_t block = 1 << 11;  // doubles per destination
    const double X = static_cast<double>(block) * sizeof(double);
    const double hockney =
        model::hockney_alltoall_time(p, X, machine.net.t_s, machine.net.t_w());
    table.add_row(
        {util::num(p), util::num(X / 1024.0, 0), util::sci(hockney, 3),
         util::sci(measured_alltoall_time(machine, p, block, smpi::AlltoallAlgo::kPairwise), 3),
         util::sci(measured_alltoall_time(machine, p, block, smpi::AlltoallAlgo::kRing), 3),
         util::sci(measured_alltoall_time(machine, p, block, smpi::AlltoallAlgo::kNaive), 3),
         util::sci(measured_alltoall_time(machine, p, block, smpi::AlltoallAlgo::kBruck), 3)});
  }
  bench::emit(table, "ablation_alltoall_time");

  // Small messages: the regime Bruck targets (fewer startups dominate).
  std::printf("\n-- small-message all-to-all (8 doubles per destination) --\n");
  util::Table small({"p", "pairwise_s", "bruck_s"});
  for (int p : {16, 64, 128}) {
    small.add_row(
        {util::num(p),
         util::sci(measured_alltoall_time(machine, p, 8, smpi::AlltoallAlgo::kPairwise), 3),
         util::sci(measured_alltoall_time(machine, p, 8, smpi::AlltoallAlgo::kBruck), 3)});
  }
  bench::emit(small, "ablation_alltoall_small");

  // End-to-end effect on FT energy.
  std::printf("\n-- FT total energy per all-to-all algorithm (class A, p = 32) --\n");
  util::Table ft_table({"algorithm", "time_s", "energy_J"});
  auto noisy = bench::with_noise(machine);
  for (auto [name, algo] :
       {std::pair{"pairwise", smpi::AlltoallAlgo::kPairwise},
        std::pair{"ring", smpi::AlltoallAlgo::kRing},
        std::pair{"naive", smpi::AlltoallAlgo::kNaive}}) {
    auto config = npb::ft_class(npb::ProblemClass::A);
    config.collectives.alltoall = algo;
    const auto run = analysis::run_ft(noisy, config, 32);
    ft_table.add_row({name, util::num(run.makespan, 4), util::num(run.total_energy_j(), 1)});
  }
  bench::emit(ft_table, "ablation_alltoall_ft");
  return 0;
}
